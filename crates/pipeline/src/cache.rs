//! Content-addressed artifact cache.
//!
//! Every stage's inputs — upstream artifact hashes plus its own parameters
//! — are folded into a 128-bit [`StableHasher`] key. The key names a
//! directory under the cache root holding the stage's output (`artifact`)
//! and a one-line human-readable description (`meta`). A stage whose key
//! directory exists is a cache hit and is not re-executed; because keys
//! chain through upstream hashes, changing one knob invalidates exactly
//! the stages downstream of it.
//!
//! Writes go through a temp dir + rename so concurrent branches that
//! race on the same key (e.g. two branches with identical remedy
//! parameters) both land a complete artifact. Each `store` call stages
//! into its own uniquely-named temp dir — naming it by `(stage, key,
//! pid)` alone let two threads of one process share a temp dir, and the
//! winner's rename yanked it out from under the loser mid-write.

use crate::error::PipelineError;
use remedy_core::hash::StableHasher;
use remedy_obs::Scope as ObsScope;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

/// Name of the artifact payload inside a cache entry.
const ARTIFACT_FILE: &str = "artifact";
/// Name of the human-readable description inside a cache entry.
const META_FILE: &str = "meta";
/// Name of the last-replayed marker inside a cache entry; its mtime is
/// refreshed on every cache hit so GC can evict least-recently-used
/// entries first.
const USED_FILE: &str = "used";

/// A 128-bit cache key, printed as 32 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// Finalizes a hasher into a key.
    pub fn from_hasher(h: &StableHasher) -> Self {
        CacheKey(h.finish())
    }

    /// The hex form used in directory names and manifests.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

/// Process-wide sequence making every staged temp dir name unique, even
/// for same-key stores racing across threads.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// An on-disk artifact store rooted at one directory.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    root: PathBuf,
    obs: ObsScope,
}

impl ArtifactCache {
    /// Opens (and creates if needed) a cache at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<ArtifactCache, PipelineError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| PipelineError(format!("cannot create cache dir: {e}")))?;
        Ok(ArtifactCache {
            root,
            obs: ObsScope::disabled(),
        })
    }

    /// Attaches an observability scope recording `hits`, `misses`, and
    /// `store_races` across every user of this cache handle.
    pub fn with_obs(mut self, obs: ObsScope) -> ArtifactCache {
        self.obs = obs;
        self
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_dir(&self, stage: &str, key: CacheKey) -> PathBuf {
        self.root.join(format!("{stage}-{}", key.hex()))
    }

    /// Returns the cached artifact text for `(stage, key)`, if present.
    ///
    /// A hit refreshes the entry's `used` marker so [`ArtifactCache::gc`]
    /// can order evictions by last replay rather than creation time.
    pub fn lookup(&self, stage: &str, key: CacheKey) -> Option<String> {
        let dir = self.entry_dir(stage, key);
        let found = std::fs::read_to_string(dir.join(ARTIFACT_FILE)).ok();
        if found.is_some() {
            // best-effort: a read-only cache still serves hits
            let _ = std::fs::write(dir.join(USED_FILE), b"");
        }
        self.obs
            .add(if found.is_some() { "hits" } else { "misses" }, 1);
        found
    }

    /// Stores an artifact with a one-line description; atomic per entry.
    pub fn store(
        &self,
        stage: &str,
        key: CacheKey,
        artifact: &str,
        description: &str,
    ) -> Result<(), PipelineError> {
        let dir = self.entry_dir(stage, key);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self.root.join(format!(
            ".tmp-{stage}-{}-{}-{seq}",
            key.hex(),
            std::process::id()
        ));
        let staged = (|| -> std::io::Result<()> {
            std::fs::create_dir_all(&tmp)?;
            std::fs::write(tmp.join(ARTIFACT_FILE), artifact)?;
            std::fs::write(tmp.join(META_FILE), format!("{description}\n"))?;
            Ok(())
        })();
        if let Err(e) = staged {
            // don't leave a half-written temp dir behind
            let _ = std::fs::remove_dir_all(&tmp);
            return Err(PipelineError(format!("cannot stage cache entry: {e}")));
        }
        match std::fs::rename(&tmp, &dir) {
            Ok(()) => Ok(()),
            Err(_) if dir.join(ARTIFACT_FILE).exists() => {
                // a concurrent writer won the race; its artifact is
                // identical by construction (same key = same inputs)
                self.obs.add("store_races", 1);
                let _ = std::fs::remove_dir_all(&tmp);
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_dir_all(&tmp);
                Err(PipelineError(format!("cannot store cache entry: {e}")))
            }
        }
    }

    /// Number of entries currently in the cache (for tests and stats).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.root)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| !e.file_name().to_string_lossy().starts_with(".tmp-"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sweeps the cache according to `policy`.
    ///
    /// Three passes, all best-effort per entry:
    ///
    /// 1. orphaned `.tmp-*` staging dirs (crashed or interrupted stores)
    ///    are always deleted;
    /// 2. entries whose last use is older than `max_age` are deleted;
    /// 3. if the surviving entries still exceed `max_bytes`, the
    ///    least-recently-replayed ones are deleted oldest-first until the
    ///    budget holds.
    ///
    /// "Last use" is the newest of the entry's `used` marker (touched on
    /// every [`ArtifactCache::lookup`] hit) and its artifact file, so an
    /// entry that was stored but never replayed still has a timestamp.
    /// Counters (`gc.entries_removed`, `gc.bytes_removed`, …) land on the
    /// cache's observability scope.
    pub fn gc(&self, policy: &GcPolicy) -> Result<GcStats, PipelineError> {
        let now = SystemTime::now();
        let mut stats = GcStats::default();
        // (dir, last_used, bytes) for every live entry
        let mut live: Vec<(PathBuf, SystemTime, u64)> = Vec::new();

        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| PipelineError(format!("cannot read cache dir: {e}")))?;
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !path.is_dir() {
                continue;
            }
            if name.starts_with(".tmp-") {
                if std::fs::remove_dir_all(&path).is_ok() {
                    stats.tmp_dirs_removed += 1;
                }
                continue;
            }
            stats.entries_scanned += 1;
            let bytes = dir_bytes(&path);
            let last_used = entry_last_used(&path);
            let expired = match (policy.max_age, now.duration_since(last_used)) {
                (Some(max_age), Ok(age)) => age > max_age,
                _ => false,
            };
            if expired && std::fs::remove_dir_all(&path).is_ok() {
                stats.entries_removed += 1;
                stats.bytes_removed += bytes;
                continue;
            }
            live.push((path, last_used, bytes));
        }

        // size sweep: evict least-recently-used first until under budget
        if let Some(max_bytes) = policy.max_bytes {
            let mut total: u64 = live.iter().map(|(_, _, b)| b).sum();
            live.sort_by_key(|&(_, used, _)| used);
            let mut idx = 0;
            while total > max_bytes && idx < live.len() {
                let (path, _, bytes) = &live[idx];
                if std::fs::remove_dir_all(path).is_ok() {
                    stats.entries_removed += 1;
                    stats.bytes_removed += bytes;
                    total -= bytes;
                    live[idx].2 = 0; // mark evicted for the live tally
                }
                idx += 1;
            }
            live.retain(|(_, _, b)| *b > 0);
        }

        stats.live_entries = live.len() as u64;
        stats.live_bytes = live.iter().map(|(_, _, b)| b).sum();
        self.obs.add_many(&[
            ("gc.entries_scanned", stats.entries_scanned),
            ("gc.entries_removed", stats.entries_removed),
            ("gc.bytes_removed", stats.bytes_removed),
            ("gc.tmp_dirs_removed", stats.tmp_dirs_removed),
        ]);
        Ok(stats)
    }
}

/// Limits for [`ArtifactCache::gc`]; a `None` bound disables that sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcPolicy {
    /// Byte budget for the cache after the sweep; least-recently-replayed
    /// entries are evicted until the live set fits.
    pub max_bytes: Option<u64>,
    /// Entries whose last use is older than this are evicted regardless
    /// of the byte budget.
    pub max_age: Option<Duration>,
}

/// What one [`ArtifactCache::gc`] sweep scanned and removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Cache entries examined (excluding `.tmp-*` staging dirs).
    pub entries_scanned: u64,
    /// Cache entries deleted by the age or size sweep.
    pub entries_removed: u64,
    /// Bytes reclaimed from deleted entries.
    pub bytes_removed: u64,
    /// Orphaned `.tmp-*` staging dirs deleted.
    pub tmp_dirs_removed: u64,
    /// Entries surviving the sweep.
    pub live_entries: u64,
    /// Total bytes of the surviving entries.
    pub live_bytes: u64,
}

/// Total size of the files directly inside an entry dir.
fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter_map(|e| e.metadata().ok())
                .filter(|m| m.is_file())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// The newest of the `used` marker's and the artifact's mtimes; epoch if
/// neither is readable (such an entry sorts oldest and is evicted first).
fn entry_last_used(dir: &Path) -> SystemTime {
    [USED_FILE, ARTIFACT_FILE]
        .iter()
        .filter_map(|f| std::fs::metadata(dir.join(f)).ok())
        .filter_map(|m| m.modified().ok())
        .max()
        .unwrap_or(SystemTime::UNIX_EPOCH)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(name: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("remedy_cache_test_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::open(dir).unwrap()
    }

    #[test]
    fn store_then_lookup() {
        let cache = temp_cache("roundtrip");
        let key = CacheKey(0xABCD);
        assert_eq!(cache.lookup("load", key), None);
        cache.store("load", key, "payload", "test entry").unwrap();
        assert_eq!(cache.lookup("load", key).as_deref(), Some("payload"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_stages_do_not_collide() {
        let cache = temp_cache("stages");
        let key = CacheKey(1);
        cache.store("load", key, "a", "").unwrap();
        assert_eq!(cache.lookup("identify", key), None);
    }

    #[test]
    fn double_store_is_idempotent() {
        let cache = temp_cache("idempotent");
        let key = CacheKey(2);
        cache.store("train", key, "x", "").unwrap();
        cache.store("train", key, "x", "").unwrap();
        assert_eq!(cache.lookup("train", key).as_deref(), Some("x"));
        assert_eq!(cache.len(), 1);
    }

    /// How many `.tmp-` staging dirs are left under the cache root.
    fn stale_tmp_dirs(cache: &ArtifactCache) -> usize {
        std::fs::read_dir(cache.root())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .count()
    }

    /// Regression (same-process store race): temp dirs used to be named by
    /// `(stage, key, pid)` only, so threads of one process racing on one
    /// key shared a staging dir — the winner's rename yanked it mid-write
    /// and the loser's `fs::write` failed with a spurious `PipelineError`.
    /// Every store must now succeed, leaving one complete entry and no
    /// stale temp dirs.
    #[test]
    fn concurrent_same_key_stores_all_succeed() {
        let cache = temp_cache("race");
        let key = CacheKey(0xFEED);
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = &cache;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        for _ in 0..50 {
                            cache.store("identify", key, "artifact-body", "desc")?;
                        }
                        Ok::<(), PipelineError>(())
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap().unwrap();
            }
        });
        assert_eq!(
            cache.lookup("identify", key).as_deref(),
            Some("artifact-body")
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(stale_tmp_dirs(&cache), 0, "staging dirs were leaked");
    }

    #[test]
    fn gc_with_zero_budget_removes_everything() {
        let cache = temp_cache("gc_zero");
        cache.store("load", CacheKey(1), "aaaa", "").unwrap();
        cache.store("train", CacheKey(2), "bbbb", "").unwrap();
        let stats = cache
            .gc(&GcPolicy {
                max_bytes: Some(0),
                max_age: None,
            })
            .unwrap();
        assert_eq!(stats.entries_scanned, 2);
        assert_eq!(stats.entries_removed, 2);
        assert!(stats.bytes_removed > 0);
        assert_eq!(stats.live_entries, 0);
        assert_eq!(stats.live_bytes, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn gc_sweeps_orphaned_tmp_dirs_even_with_no_policy() {
        let cache = temp_cache("gc_tmp");
        cache.store("load", CacheKey(1), "x", "").unwrap();
        std::fs::create_dir_all(cache.root().join(".tmp-load-dead-1234-0")).unwrap();
        let stats = cache.gc(&GcPolicy::default()).unwrap();
        assert_eq!(stats.tmp_dirs_removed, 1);
        assert_eq!(stats.entries_removed, 0);
        assert_eq!(stats.live_entries, 1);
        assert_eq!(cache.lookup("load", CacheKey(1)).as_deref(), Some("x"));
    }

    #[test]
    fn gc_evicts_least_recently_replayed_first() {
        let cache = temp_cache("gc_lru");
        cache.store("load", CacheKey(1), "old entry", "").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store("load", CacheKey(2), "new entry", "").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // replaying the *older* entry must protect it from the sweep
        assert!(cache.lookup("load", CacheKey(1)).is_some());
        let total = dir_bytes(&cache.entry_dir("load", CacheKey(1)))
            + dir_bytes(&cache.entry_dir("load", CacheKey(2)));
        let stats = cache
            .gc(&GcPolicy {
                max_bytes: Some(total - 1), // force exactly one eviction
                max_age: None,
            })
            .unwrap();
        assert_eq!(stats.entries_removed, 1);
        assert!(cache.lookup("load", CacheKey(1)).is_some());
        assert!(cache.lookup("load", CacheKey(2)).is_none());
    }

    #[test]
    fn gc_age_sweep_expires_stale_entries() {
        let cache = temp_cache("gc_age");
        cache.store("load", CacheKey(1), "x", "").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        let stats = cache
            .gc(&GcPolicy {
                max_bytes: None,
                max_age: Some(std::time::Duration::from_millis(1)),
            })
            .unwrap();
        assert_eq!(stats.entries_removed, 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn gc_reports_counters_on_the_obs_scope() {
        let rec = remedy_obs::Recorder::enabled();
        let cache = temp_cache("gc_obs").with_obs(rec.scope("cache"));
        cache.store("load", CacheKey(1), "x", "").unwrap();
        std::fs::create_dir_all(cache.root().join(".tmp-load-dead-1-0")).unwrap();
        cache
            .gc(&GcPolicy {
                max_bytes: Some(0),
                max_age: None,
            })
            .unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.counter("cache", "gc.entries_scanned"), Some(1));
        assert_eq!(snap.counter("cache", "gc.entries_removed"), Some(1));
        assert_eq!(snap.counter("cache", "gc.tmp_dirs_removed"), Some(1));
        assert!(snap.counter("cache", "gc.bytes_removed").unwrap() > 0);
    }

    #[test]
    fn obs_scope_counts_hits_misses_and_races() {
        let rec = remedy_obs::Recorder::enabled();
        let cache = temp_cache("obs").with_obs(rec.scope("cache"));
        let key = CacheKey(3);
        assert!(cache.lookup("load", key).is_none());
        cache.store("load", key, "x", "").unwrap();
        assert!(cache.lookup("load", key).is_some());
        // benign rename race: the entry already exists
        cache.store("load", key, "x", "").unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.counter("cache", "misses"), Some(1));
        assert_eq!(snap.counter("cache", "hits"), Some(1));
        assert_eq!(snap.counter("cache", "store_races"), Some(1));
    }
}
