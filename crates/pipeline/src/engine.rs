//! The orchestrator: runs a plan's stage DAG with caching and branch
//! parallelism.
//!
//! The DAG has a linear shared prefix and an independent fan-out:
//!
//! ```text
//! Load ──► Discretize ──► Identify ──► branch 1: [Remedy] ─► Train ─► Audit
//!                                  ├──► branch 2: [Remedy] ─► Train ─► Audit
//!                                  └──► ...
//! ```
//!
//! Branches share the identify artifact and fan out over scoped worker
//! threads (a claim-by-atomic-counter queue, the same shape as
//! `remedy_core::identify_in_parallel`). Each branch runs its own
//! remedy → train → audit chain sequentially; results are stitched back
//! into plan order so manifests are deterministic regardless of thread
//! interleaving.
//!
//! ## Failure containment
//!
//! A failing (or panicking) branch does not abort the run: the worker
//! catches the failure at the branch boundary, sibling branches keep
//! going, and the branch shows up under `failures` in the manifest with
//! its [`ErrorKind`](crate::ErrorKind) — the run's status becomes
//! `partial` (or `failed` if no branch survived). Only shared-prefix
//! errors, which leave nothing to salvage, abort the run.
//!
//! When [`PipelineOptions::manifest_out`] is set, the manifest is
//! re-written atomically after the shared prefix and after every branch
//! with `status: "running"` — so a killed run always leaves a readable
//! snapshot, and `--resume` (which replays completed stages from the
//! content-addressed cache) can pick up from it.

use crate::cache::ArtifactCache;
use crate::error::{panic_message, PipelineError};
use crate::manifest::{BranchFailure, BranchOutcome, RunManifest, RunStatus, StageRecord};
use crate::plan::{BranchSpec, Plan};
use crate::retry::RetryPolicy;
use crate::shard::{sharded_identify_stage, WorkerMode};
use crate::stages::{
    audit_stage, discretize_stage, identify_stage, load_stage, remedy_stage, skipped_remedy_record,
    split_dataset, train_stage, StageOutput,
};
use remedy_core::hash::stable_hash;
use remedy_dataset::persist as data_persist;
use remedy_dataset::Dataset;
use remedy_fairness::MetricsSummary;
use remedy_obs::{Recorder, Scope as ObsScope, Span};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Knobs that affect *how* a run executes, never *what* it computes —
/// none of these participate in cache keys.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Cache root directory.
    pub cache_dir: std::path::PathBuf,
    /// Worker threads for identification and branch fan-out; 0 = all
    /// cores.
    pub threads: usize,
    /// Recompute every stage even when a cached artifact exists (fresh
    /// artifacts still overwrite the cache).
    pub force: bool,
    /// When set, stream a JSONL trace of spans / counters / histograms to
    /// this path (and aggregate counters into the manifest). `None` keeps
    /// the recorder disabled — hot paths stay within benchmark noise.
    pub trace: Option<std::path::PathBuf>,
    /// Retry policy for transient I/O in the cache store/replay paths.
    pub retry: RetryPolicy,
    /// When set, the manifest is flushed here incrementally (atomic
    /// rewrite after the shared prefix and after every branch), so a
    /// killed run leaves a well-formed `status: "running"` snapshot.
    pub manifest_out: Option<std::path::PathBuf>,
    /// A prior run's manifest to resume from: it is validated against
    /// the plan (same dataset and seed) before any work starts, then
    /// completed stages replay from the cache and only unfinished ones
    /// re-execute.
    pub resume: Option<std::path::PathBuf>,
    /// Shards for the identify prefix: `> 1` partitions the training
    /// split stratified by protected key and fans the counting scan out
    /// over shard workers ([`crate::shard`]); `0` or `1` runs the
    /// single-process stage. Not part of any cache key — a sharded run
    /// produces byte-identical artifacts under identical keys.
    pub shards: usize,
    /// How shard workers execute when `shards > 1`. Each worker scans
    /// with `max(1, threads / shards)` threads so `--shards N --threads
    /// T` never oversubscribes.
    pub worker: WorkerMode,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            cache_dir: ".remedy-cache".into(),
            threads: 0,
            force: false,
            trace: None,
            retry: RetryPolicy::none(),
            manifest_out: None,
            resume: None,
            shards: 1,
            worker: WorkerMode::InProcess,
        }
    }
}

/// Everything one branch produces: its stage records in DAG order plus
/// the audit outcome.
struct BranchRun {
    records: Vec<StageRecord>,
    outcome: BranchOutcome,
}

/// Runs a plan end to end; returns the manifest describing what happened.
///
/// Branch-level failures do not produce an `Err`: they are reported in
/// the manifest's `failures` with `status` `partial` or `failed`. Only
/// errors that stop the whole run (unreadable plan inputs, shared-prefix
/// failures, an invalid resume manifest) surface as `Err`.
pub fn run(plan: &Plan, opts: &PipelineOptions) -> Result<RunManifest, PipelineError> {
    let recorder = match &opts.trace {
        Some(path) => Recorder::to_path(path).map_err(|e| {
            PipelineError::fatal(format!("cannot open trace {}: {e}", path.display()))
        })?,
        None => Recorder::disabled(),
    };
    let result = run_with(plan, opts, &recorder);
    // emit the counter/histogram summary events and flush the JSONL sink
    recorder.finish();
    result
}

/// [`run`] against an explicit recorder (tests pass an in-memory one).
pub fn run_with(
    plan: &Plan,
    opts: &PipelineOptions,
    recorder: &Recorder,
) -> Result<RunManifest, PipelineError> {
    let started = Instant::now();
    let run_span = recorder.scope("pipeline").span("run");
    if let Some(prior) = &opts.resume {
        resume_preflight(plan, prior, &run_span.child_scope("resume"))?;
    }
    let cache = ArtifactCache::open(opts.cache_dir.clone())?
        .with_obs(run_span.child_scope("cache"))
        .with_retry(opts.retry);

    // shared prefix: load → discretize → identify
    let load = load_stage(plan, &cache, opts.force, &run_span.child_scope("load"))?;
    let discretized = discretize_stage(
        plan,
        &load,
        &cache,
        opts.force,
        &run_span.child_scope("discretize"),
    )?;
    let data = data_persist::dataset_from_text(&discretized.text)?;
    let (train_set, test_set) = split_dataset(plan, &data)?;
    let (identify, shard_records) = if opts.shards > 1 {
        // a killed sharded run should still leave a resumable snapshot,
        // even before the identify record exists (best-effort)
        if let Some(path) = &opts.manifest_out {
            let _ = RunManifest {
                dataset: plan.source.clone(),
                seed: plan.seed,
                threads: opts.threads,
                status: RunStatus::Running,
                total_ms: started.elapsed().as_secs_f64() * 1e3,
                stages: vec![load.record.clone(), discretized.record.clone()],
                branches: Vec::new(),
                failures: Vec::new(),
            }
            .write_path(path);
        }
        sharded_identify_stage(
            plan,
            &discretized,
            &train_set,
            opts.shards,
            opts.threads,
            &opts.worker,
            opts.force,
            &cache,
            &run_span,
        )?
    } else {
        let identify = identify_stage(
            plan,
            &discretized,
            &train_set,
            opts.threads,
            &cache,
            opts.force,
            &run_span.child_scope("identify"),
        )?;
        (identify, Vec::new())
    };

    // the unremedied training split doubles as the remedy "artifact" of
    // technique=none branches; serialize it once for all of them
    let train_split_text = data_persist::dataset_to_text(&train_set);
    let train_split_hash = format!("{:032x}", stable_hash(train_split_text.as_bytes()));

    // assembles a manifest from whatever branch results exist so far;
    // also the kill-safe snapshot written between branches
    let manifest_obs = run_span.child_scope("manifest");
    let assemble = |runs: &[(usize, Result<BranchRun, PipelineError>)], status: RunStatus| {
        let mut ordered: Vec<&(usize, Result<BranchRun, PipelineError>)> = runs.iter().collect();
        ordered.sort_by_key(|(idx, _)| *idx);
        let mut stages = vec![load.record.clone(), discretized.record.clone()];
        stages.extend(shard_records.iter().cloned());
        stages.push(identify.record.clone());
        let mut branches = Vec::new();
        let mut failures = Vec::new();
        for (idx, result) in ordered {
            match result {
                Ok(run) => {
                    stages.extend(run.records.iter().cloned());
                    branches.push(run.outcome.clone());
                }
                Err(e) => failures.push(BranchFailure {
                    name: plan.branches[*idx].name.clone(),
                    kind: e.kind(),
                    error: e.to_string(),
                }),
            }
        }
        RunManifest {
            dataset: plan.source.clone(),
            seed: plan.seed,
            threads: opts.threads,
            status,
            total_ms: started.elapsed().as_secs_f64() * 1e3,
            stages,
            branches,
            failures,
        }
    };
    let flush_snapshot = |runs: &[(usize, Result<BranchRun, PipelineError>)]| {
        let Some(path) = &opts.manifest_out else {
            return;
        };
        // best-effort: a failed snapshot never fails the run, the final
        // write will surface persistent problems
        match assemble(runs, RunStatus::Running).write_path(path) {
            Ok(()) => manifest_obs.add("flushes", 1),
            Err(_) => manifest_obs.add("flush_errors", 1),
        }
    };
    flush_snapshot(&[]);

    // branch fan-out
    let n_workers = effective_workers(opts.threads, plan.branches.len());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Result<BranchRun, PipelineError>)>> =
        Mutex::new(Vec::with_capacity(plan.branches.len()));
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(branch) = plan.branches.get(idx) else {
                    break;
                };
                // the branch boundary is the containment line: a panic
                // (or error) here fails this branch, not the run
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_branch(
                        plan,
                        branch,
                        &discretized,
                        &identify,
                        &train_set,
                        &test_set,
                        &train_split_text,
                        &train_split_hash,
                        &cache,
                        opts.force,
                        &run_span,
                    )
                }))
                .unwrap_or_else(|payload| {
                    Err(PipelineError::stage_panic(panic_message(payload.as_ref())))
                })
                .map_err(|e| e.in_branch(&branch.name));
                let guard = &mut *results.lock().unwrap();
                guard.push((idx, result));
                flush_snapshot(guard);
            });
        }
    });

    let runs = results.into_inner().unwrap();
    let failed = runs.iter().filter(|(_, r)| r.is_err()).count();
    let status = match (failed, runs.len() - failed) {
        (0, _) => RunStatus::Ok,
        (_, 0) => RunStatus::Failed,
        _ => RunStatus::Partial,
    };
    let manifest = assemble(&runs, status);
    if let Some(path) = &opts.manifest_out {
        manifest.write_path(path).map_err(|e| {
            PipelineError::fatal(format!("cannot write manifest {}: {e}", path.display()))
        })?;
    }
    Ok(manifest)
}

/// Validates a prior run's manifest before resuming: it must parse (a
/// damaged manifest is a [`CorruptArtifact`](crate::ErrorKind) error, not
/// a panic) and describe the same dataset and seed as the plan being run.
/// Resume then *is* the normal run — completed stages replay from the
/// content-addressed cache, unfinished ones execute.
fn resume_preflight(
    plan: &Plan,
    prior: &std::path::Path,
    obs: &ObsScope,
) -> Result<(), PipelineError> {
    let manifest = RunManifest::from_path(prior)?;
    if manifest.dataset != plan.source || manifest.seed != plan.seed {
        return Err(PipelineError::invalid_plan(format!(
            "cannot resume {}: it records dataset `{}` seed {}, but the plan runs dataset `{}` seed {}",
            prior.display(),
            manifest.dataset,
            manifest.seed,
            plan.source,
            plan.seed
        )));
    }
    obs.add_many(&[
        ("prior_stages", manifest.stages.len() as u64),
        ("prior_branches", manifest.branches.len() as u64),
        (
            "prior_incomplete",
            u64::from(manifest.status != RunStatus::Ok),
        ),
    ]);
    Ok(())
}

/// Worker count: bounded by the branch count, `0` means all cores.
fn effective_workers(threads: usize, branches: usize) -> usize {
    let cap = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    cap.clamp(1, branches.max(1))
}

#[allow(clippy::too_many_arguments)]
fn run_branch(
    plan: &Plan,
    branch: &BranchSpec,
    discretized: &StageOutput,
    identify: &StageOutput,
    train_set: &Dataset,
    test_set: &Dataset,
    train_split_text: &str,
    train_split_hash: &str,
    cache: &ArtifactCache,
    force: bool,
    run_span: &Span,
) -> Result<BranchRun, PipelineError> {
    let mut records = Vec::with_capacity(3);
    // scope labels are branch-qualified so concurrent branches with the
    // same stage kind never merge their counters
    let stage_scope = |stage: &str| run_span.child_scope(&format!("{}/{stage}", branch.name));

    // remedy (or pass the unremedied split through)
    let (train_input, train_input_hash) = match branch.technique {
        Some(_) => {
            let params = plan.remedy_params(branch)?;
            let remedied = remedy_stage(
                plan,
                &branch.name,
                &params,
                discretized,
                identify,
                train_set,
                cache,
                force,
                &stage_scope("remedy"),
            )?;
            let hash = remedied.artifact_hash.clone();
            records.push(remedied.record.clone());
            (remedied.text, hash)
        }
        None => {
            records.push(skipped_remedy_record(&branch.name, train_split_hash));
            (train_split_text.to_string(), train_split_hash.to_string())
        }
    };

    // train
    let model = train_stage(
        plan,
        &branch.name,
        branch.model,
        &train_input,
        &train_input_hash,
        cache,
        force,
        &stage_scope("train"),
    )?;
    records.push(model.record.clone());

    // audit
    let audit = audit_stage(
        plan,
        &branch.name,
        &model,
        discretized,
        test_set,
        cache,
        force,
        &stage_scope("audit"),
    )?;
    records.push(audit.record.clone());
    let metrics = MetricsSummary::from_text(&audit.text)
        .map_err(|e| PipelineError::corrupt(format!("bad metrics artifact: {e}")))?;

    Ok(BranchRun {
        records,
        outcome: BranchOutcome {
            name: branch.name.clone(),
            technique: branch
                .technique
                .map(|t| t.label().to_string())
                .unwrap_or_else(|| "none".to_string()),
            model: branch.model.token().to_string(),
            metrics,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_sane() {
        assert_eq!(effective_workers(4, 2), 2);
        assert_eq!(effective_workers(1, 8), 1);
        assert!(effective_workers(0, 3) >= 1);
        assert_eq!(effective_workers(2, 0), 1);
    }
}
