//! The orchestrator: runs a plan's stage DAG with caching and branch
//! parallelism.
//!
//! The DAG has a linear shared prefix and an independent fan-out:
//!
//! ```text
//! Load ──► Discretize ──► Identify ──► branch 1: [Remedy] ─► Train ─► Audit
//!                                  ├──► branch 2: [Remedy] ─► Train ─► Audit
//!                                  └──► ...
//! ```
//!
//! Branches share the identify artifact and fan out over scoped worker
//! threads (a claim-by-atomic-counter queue, the same shape as
//! `remedy_core::identify_in_parallel`). Each branch runs its own
//! remedy → train → audit chain sequentially; results are stitched back
//! into plan order so manifests are deterministic regardless of thread
//! interleaving.

use crate::cache::ArtifactCache;
use crate::error::PipelineError;
use crate::manifest::{BranchOutcome, RunManifest, StageRecord};
use crate::plan::{BranchSpec, Plan};
use crate::stages::{
    audit_stage, discretize_stage, identify_stage, load_stage, remedy_stage, skipped_remedy_record,
    split_dataset, train_stage, StageOutput,
};
use remedy_core::hash::stable_hash;
use remedy_dataset::persist as data_persist;
use remedy_dataset::Dataset;
use remedy_fairness::MetricsSummary;
use remedy_obs::{Recorder, Span};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Knobs that affect *how* a run executes, never *what* it computes —
/// none of these participate in cache keys.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Cache root directory.
    pub cache_dir: std::path::PathBuf,
    /// Worker threads for identification and branch fan-out; 0 = all
    /// cores.
    pub threads: usize,
    /// Recompute every stage even when a cached artifact exists (fresh
    /// artifacts still overwrite the cache).
    pub force: bool,
    /// When set, stream a JSONL trace of spans / counters / histograms to
    /// this path (and aggregate counters into the manifest). `None` keeps
    /// the recorder disabled — hot paths stay within benchmark noise.
    pub trace: Option<std::path::PathBuf>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            cache_dir: ".remedy-cache".into(),
            threads: 0,
            force: false,
            trace: None,
        }
    }
}

/// Everything one branch produces: its stage records in DAG order plus
/// the audit outcome.
struct BranchRun {
    records: Vec<StageRecord>,
    outcome: BranchOutcome,
}

/// Runs a plan end to end; returns the manifest describing what happened.
pub fn run(plan: &Plan, opts: &PipelineOptions) -> Result<RunManifest, PipelineError> {
    let recorder = match &opts.trace {
        Some(path) => Recorder::to_path(path)
            .map_err(|e| PipelineError(format!("cannot open trace {}: {e}", path.display())))?,
        None => Recorder::disabled(),
    };
    let result = run_with(plan, opts, &recorder);
    // emit the counter/histogram summary events and flush the JSONL sink
    recorder.finish();
    result
}

/// [`run`] against an explicit recorder (tests pass an in-memory one).
pub fn run_with(
    plan: &Plan,
    opts: &PipelineOptions,
    recorder: &Recorder,
) -> Result<RunManifest, PipelineError> {
    let started = Instant::now();
    let run_span = recorder.scope("pipeline").span("run");
    let cache =
        ArtifactCache::open(opts.cache_dir.clone())?.with_obs(run_span.child_scope("cache"));

    // shared prefix: load → discretize → identify
    let load = load_stage(plan, &cache, opts.force, &run_span.child_scope("load"))?;
    let discretized = discretize_stage(
        plan,
        &load,
        &cache,
        opts.force,
        &run_span.child_scope("discretize"),
    )?;
    let data = data_persist::dataset_from_text(&discretized.text)?;
    let (train_set, test_set) = split_dataset(plan, &data)?;
    let identify = identify_stage(
        plan,
        &discretized,
        &train_set,
        opts.threads,
        &cache,
        opts.force,
        &run_span.child_scope("identify"),
    )?;

    // the unremedied training split doubles as the remedy "artifact" of
    // technique=none branches; serialize it once for all of them
    let train_split_text = data_persist::dataset_to_text(&train_set);
    let train_split_hash = format!("{:032x}", stable_hash(train_split_text.as_bytes()));

    // branch fan-out
    let n_workers = effective_workers(opts.threads, plan.branches.len());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Result<BranchRun, PipelineError>)>> =
        Mutex::new(Vec::with_capacity(plan.branches.len()));
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(branch) = plan.branches.get(idx) else {
                    break;
                };
                let result = run_branch(
                    plan,
                    branch,
                    &discretized,
                    &identify,
                    &train_set,
                    &test_set,
                    &train_split_text,
                    &train_split_hash,
                    &cache,
                    opts.force,
                    &run_span,
                );
                results.lock().unwrap().push((idx, result));
            });
        }
    });

    let mut runs = results.into_inner().unwrap();
    runs.sort_by_key(|(idx, _)| *idx);
    let mut stages = vec![load.record, discretized.record, identify.record];
    let mut branches = Vec::with_capacity(runs.len());
    for (_, result) in runs {
        let run = result?;
        stages.extend(run.records);
        branches.push(run.outcome);
    }
    Ok(RunManifest {
        dataset: plan.source.clone(),
        seed: plan.seed,
        threads: opts.threads,
        total_ms: started.elapsed().as_secs_f64() * 1e3,
        stages,
        branches,
    })
}

/// Worker count: bounded by the branch count, `0` means all cores.
fn effective_workers(threads: usize, branches: usize) -> usize {
    let cap = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    cap.clamp(1, branches.max(1))
}

#[allow(clippy::too_many_arguments)]
fn run_branch(
    plan: &Plan,
    branch: &BranchSpec,
    discretized: &StageOutput,
    identify: &StageOutput,
    train_set: &Dataset,
    test_set: &Dataset,
    train_split_text: &str,
    train_split_hash: &str,
    cache: &ArtifactCache,
    force: bool,
    run_span: &Span,
) -> Result<BranchRun, PipelineError> {
    let mut records = Vec::with_capacity(3);
    // scope labels are branch-qualified so concurrent branches with the
    // same stage kind never merge their counters
    let stage_scope = |stage: &str| run_span.child_scope(&format!("{}/{stage}", branch.name));

    // remedy (or pass the unremedied split through)
    let (train_input, train_input_hash) = match branch.technique {
        Some(_) => {
            let params = plan.remedy_params(branch)?;
            let remedied = remedy_stage(
                plan,
                &branch.name,
                &params,
                discretized,
                identify,
                train_set,
                cache,
                force,
                &stage_scope("remedy"),
            )?;
            let hash = remedied.artifact_hash.clone();
            records.push(remedied.record.clone());
            (remedied.text, hash)
        }
        None => {
            records.push(skipped_remedy_record(&branch.name, train_split_hash));
            (train_split_text.to_string(), train_split_hash.to_string())
        }
    };

    // train
    let model = train_stage(
        plan,
        &branch.name,
        branch.model,
        &train_input,
        &train_input_hash,
        cache,
        force,
        &stage_scope("train"),
    )?;
    records.push(model.record.clone());

    // audit
    let audit = audit_stage(
        plan,
        &branch.name,
        &model,
        discretized,
        test_set,
        cache,
        force,
        &stage_scope("audit"),
    )?;
    records.push(audit.record.clone());
    let metrics = MetricsSummary::from_text(&audit.text)
        .map_err(|e| PipelineError(format!("bad metrics artifact: {e}")))?;

    Ok(BranchRun {
        records,
        outcome: BranchOutcome {
            name: branch.name.clone(),
            technique: branch
                .technique
                .map(|t| t.label().to_string())
                .unwrap_or_else(|| "none".to_string()),
            model: branch.model.token().to_string(),
            metrics,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_sane() {
        assert_eq!(effective_workers(4, 2), 2);
        assert_eq!(effective_workers(1, 8), 1);
        assert!(effective_workers(0, 3) >= 1);
        assert_eq!(effective_workers(2, 0), 1);
    }
}
