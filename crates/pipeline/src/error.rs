//! The pipeline's single error type.

/// Anything that can go wrong while parsing a plan or running it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError(pub String);

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PipelineError {}

impl From<remedy_dataset::DatasetError> for PipelineError {
    fn from(e: remedy_dataset::DatasetError) -> Self {
        PipelineError(e.to_string())
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError(format!("io error: {e}"))
    }
}
