//! The pipeline's structured error type.
//!
//! Every failure carries an [`ErrorKind`] so callers can decide *policy*
//! from *classification*: transient faults are retried by
//! [`crate::retry::RetryPolicy`], corrupt artifacts are quarantined and
//! recomputed, invalid plans abort before any work starts, and stage
//! panics are contained to their branch. Errors also carry the stage and
//! branch they occurred in, so a failed branch in a wide fan-out is
//! attributable without grepping logs.

/// Failure classification; drives retry, quarantine, and containment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// A fault that may succeed if retried (interrupted/timed-out I/O,
    /// injected fail-point errors). The only kind the retry loop replays.
    Transient,
    /// A permanent failure: retrying cannot help.
    Fatal,
    /// A stored artifact failed its integrity check or could not be
    /// decoded; the entry is quarantined and the stage recomputed.
    CorruptArtifact,
    /// The plan (or a resume manifest) is malformed or inconsistent;
    /// nothing was executed.
    InvalidPlan,
    /// A stage panicked; the panic was caught at the branch boundary.
    StagePanic,
}

impl ErrorKind {
    /// The manifest/JSON token for this kind.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Transient => "transient",
            ErrorKind::Fatal => "fatal",
            ErrorKind::CorruptArtifact => "corrupt-artifact",
            ErrorKind::InvalidPlan => "invalid-plan",
            ErrorKind::StagePanic => "stage-panic",
        }
    }

    /// Parses a manifest/JSON token back into a kind.
    pub fn parse(token: &str) -> Option<ErrorKind> {
        Some(match token {
            "transient" => ErrorKind::Transient,
            "fatal" => ErrorKind::Fatal,
            "corrupt-artifact" => ErrorKind::CorruptArtifact,
            "invalid-plan" => ErrorKind::InvalidPlan,
            "stage-panic" => ErrorKind::StagePanic,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Anything that can go wrong while parsing a plan or running it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    kind: ErrorKind,
    message: String,
    stage: Option<String>,
    branch: Option<String>,
}

impl PipelineError {
    /// An error of the given kind with no stage/branch context yet.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> PipelineError {
        PipelineError {
            kind,
            message: message.into(),
            stage: None,
            branch: None,
        }
    }

    /// A [`ErrorKind::Fatal`] error.
    pub fn fatal(message: impl Into<String>) -> PipelineError {
        PipelineError::new(ErrorKind::Fatal, message)
    }

    /// A [`ErrorKind::Transient`] error (eligible for retry).
    pub fn transient(message: impl Into<String>) -> PipelineError {
        PipelineError::new(ErrorKind::Transient, message)
    }

    /// A [`ErrorKind::CorruptArtifact`] error.
    pub fn corrupt(message: impl Into<String>) -> PipelineError {
        PipelineError::new(ErrorKind::CorruptArtifact, message)
    }

    /// An [`ErrorKind::InvalidPlan`] error.
    pub fn invalid_plan(message: impl Into<String>) -> PipelineError {
        PipelineError::new(ErrorKind::InvalidPlan, message)
    }

    /// A [`ErrorKind::StagePanic`] error built from a caught panic payload.
    pub fn stage_panic(message: impl Into<String>) -> PipelineError {
        PipelineError::new(ErrorKind::StagePanic, message)
    }

    /// The failure classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// Whether a retry could plausibly succeed.
    pub fn is_transient(&self) -> bool {
        self.kind == ErrorKind::Transient
    }

    /// The bare message, without stage/branch context.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The stage this error occurred in, if attributed.
    pub fn stage(&self) -> Option<&str> {
        self.stage.as_deref()
    }

    /// The branch this error occurred in, if attributed.
    pub fn branch(&self) -> Option<&str> {
        self.branch.as_deref()
    }

    /// Attributes the error to a stage (first attribution wins, so the
    /// innermost frame that knows the stage sets it).
    pub fn in_stage(mut self, stage: &str) -> PipelineError {
        self.stage.get_or_insert_with(|| stage.to_string());
        self
    }

    /// Attributes the error to a branch (first attribution wins).
    pub fn in_branch(mut self, branch: &str) -> PipelineError {
        self.branch.get_or_insert_with(|| branch.to_string());
        self
    }

    /// Rewrites the message, keeping the kind and any stage/branch
    /// context (e.g. to prefix what operation the I/O error broke).
    pub fn map_message(mut self, f: impl FnOnce(&str) -> String) -> PipelineError {
        self.message = f(&self.message);
        self
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)?;
        match (&self.stage, &self.branch) {
            (Some(stage), Some(branch)) => write!(f, " (stage {stage}, branch {branch})"),
            (Some(stage), None) => write!(f, " (stage {stage})"),
            (None, Some(branch)) => write!(f, " (branch {branch})"),
            (None, None) => Ok(()),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<remedy_dataset::DatasetError> for PipelineError {
    fn from(e: remedy_dataset::DatasetError) -> Self {
        PipelineError::fatal(e.to_string())
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        let kind = match e.kind() {
            std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock => ErrorKind::Transient,
            _ => ErrorKind::Fatal,
        };
        PipelineError::new(kind, format!("io error: {e}"))
    }
}

/// Renders a `catch_unwind` payload as a one-line message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_message_plus_context() {
        let bare = PipelineError::fatal("cannot read plan");
        assert_eq!(bare.to_string(), "cannot read plan");
        let attributed = PipelineError::transient("io error: timed out")
            .in_stage("remedy")
            .in_branch("ps");
        assert_eq!(
            attributed.to_string(),
            "io error: timed out (stage remedy, branch ps)"
        );
        assert!(attributed.is_transient());
        assert_eq!(attributed.stage(), Some("remedy"));
        assert_eq!(attributed.branch(), Some("ps"));
    }

    #[test]
    fn first_attribution_wins() {
        let e = PipelineError::fatal("x")
            .in_stage("train")
            .in_stage("audit");
        assert_eq!(e.stage(), Some("train"));
    }

    #[test]
    fn io_errors_classify_by_kind() {
        let timeout: PipelineError =
            std::io::Error::new(std::io::ErrorKind::TimedOut, "slow disk").into();
        assert_eq!(timeout.kind(), ErrorKind::Transient);
        let missing: PipelineError =
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert_eq!(missing.kind(), ErrorKind::Fatal);
        assert!(missing.to_string().starts_with("io error:"));
    }

    #[test]
    fn kind_tokens_round_trip() {
        for kind in [
            ErrorKind::Transient,
            ErrorKind::Fatal,
            ErrorKind::CorruptArtifact,
            ErrorKind::InvalidPlan,
            ErrorKind::StagePanic,
        ] {
            assert_eq!(ErrorKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ErrorKind::parse("nonsense"), None);
    }

    #[test]
    fn panic_payloads_render() {
        let caught = std::panic::catch_unwind(|| panic!("boom {}", 7)).expect_err("must panic");
        assert_eq!(panic_message(caught.as_ref()), "panicked: boom 7");
    }
}
