//! Deterministic fault injection for tests.
//!
//! A fail point is a named site in the pipeline (cache store, cache
//! replay, stage execution) where a fault can be armed: return a
//! [`ErrorKind::Transient`](crate::ErrorKind::Transient) error, or panic.
//! Each armed fault carries a count and fires exactly that many times,
//! so tests exercise retry loops, panic containment, and resume without
//! any real I/O flakiness.
//!
//! The registry is compiled only under the `failpoints` cargo feature;
//! with the feature off every check is an inline `Ok(())` and the
//! registry costs nothing. Faults are armed either programmatically
//! (`set`) or through the `REMEDY_FAILPOINTS` environment variable,
//! parsed on first use:
//!
//! ```text
//! REMEDY_FAILPOINTS=stage.store=err(2);stage.run.remedy=panic(1)
//! ```
//!
//! Sites are hierarchical: a check at `("stage.run", "remedy")` first
//! looks up the qualified name `stage.run.remedy`, then the bare group
//! `stage.run`, so a fault can target one stage kind or all of them.
//! The sites wired into the pipeline are `stage.store.<stage>`,
//! `stage.replay.<stage>`, and `stage.run.<stage>`.

#[cfg(feature = "failpoints")]
pub use enabled::{check, clear, set, Action};

#[cfg(feature = "failpoints")]
mod enabled {
    use crate::error::PipelineError;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    /// What an armed fail point does when hit.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Action {
        /// Return a transient error (the retryable kind).
        Err,
        /// Panic (exercises `catch_unwind` containment).
        Panic,
    }

    struct Armed {
        action: Action,
        remaining: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Armed>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("REMEDY_FAILPOINTS") {
                for (site, armed) in parse_spec(&spec) {
                    map.insert(site, armed);
                }
            }
            Mutex::new(map)
        })
    }

    /// Parses `site=action(count);site=action(count)`; malformed clauses
    /// are skipped (fault injection must never break a real run).
    fn parse_spec(spec: &str) -> Vec<(String, Armed)> {
        spec.split(';')
            .filter_map(|clause| {
                let (site, rhs) = clause.trim().split_once('=')?;
                let (action, count) = rhs.trim().split_once('(')?;
                let count: u64 = count.strip_suffix(')')?.parse().ok()?;
                let action = match action {
                    "err" => Action::Err,
                    "panic" => Action::Panic,
                    _ => return None,
                };
                Some((
                    site.trim().to_string(),
                    Armed {
                        action,
                        remaining: count,
                    },
                ))
            })
            .collect()
    }

    /// Arms `site` to perform `action` the next `count` times it is hit.
    pub fn set(site: &str, action: Action, count: u64) {
        registry().lock().unwrap().insert(
            site.to_string(),
            Armed {
                action,
                remaining: count,
            },
        );
    }

    /// Disarms every fail point.
    pub fn clear() {
        registry().lock().unwrap().clear();
    }

    /// Fires the fault armed at `group.detail` (or the bare `group`), if
    /// any: decrements its count, then errors or panics.
    pub fn check(group: &str, detail: &str) -> Result<(), PipelineError> {
        let qualified = format!("{group}.{detail}");
        let action = {
            let mut map = registry().lock().unwrap();
            let hit = [qualified.as_str(), group]
                .into_iter()
                .find(|site| map.get(*site).is_some_and(|a| a.remaining > 0));
            hit.map(|site| {
                let armed = map.get_mut(site).expect("checked above");
                armed.remaining -= 1;
                armed.action
            })
        };
        match action {
            None => Ok(()),
            Some(Action::Err) => Err(PipelineError::transient(format!(
                "failpoint {qualified}: injected transient fault"
            ))),
            Some(Action::Panic) => panic!("failpoint {qualified}: injected panic"),
        }
    }
}

/// With the `failpoints` feature off, every check is an inline no-op.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn check(_group: &str, _detail: &str) -> Result<(), crate::error::PipelineError> {
    Ok(())
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    // The registry is process-global; tests that arm faults serialize on
    // this lock so parallel test threads don't trip each other's faults.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn counted_err_fires_then_exhausts() {
        let _guard = lock();
        clear();
        set("stage.store", Action::Err, 2);
        let first = check("stage.store", "identify").unwrap_err();
        assert_eq!(first.kind(), ErrorKind::Transient);
        assert!(check("stage.store", "train").is_err());
        assert!(check("stage.store", "train").is_ok(), "count exhausted");
        clear();
    }

    #[test]
    fn qualified_site_takes_precedence_and_scopes() {
        let _guard = lock();
        clear();
        set("stage.run.remedy", Action::Err, 1);
        assert!(check("stage.run", "train").is_ok(), "other stages unhurt");
        assert!(check("stage.run", "remedy").is_err());
        assert!(check("stage.run", "remedy").is_ok());
        clear();
    }

    #[test]
    fn panic_action_panics() {
        let _guard = lock();
        clear();
        set("stage.run", Action::Panic, 1);
        let payload = std::panic::catch_unwind(|| check("stage.run", "audit"))
            .expect_err("armed panic failpoint must panic");
        assert!(crate::error::panic_message(payload.as_ref()).contains("injected panic"));
        assert!(check("stage.run", "audit").is_ok(), "count exhausted");
        clear();
    }
}
