//! A minimal, zero-dependency JSON reader and writer helpers.
//!
//! Grown out of the run-manifest parser and promoted to a public module
//! so every hand-rolled JSON surface in the workspace — manifests, the
//! serve wire protocol — shares one strict reader instead of each
//! carrying its own. The reader is recursive descent with a bounded
//! depth, rejects trailing garbage, and turns any damage (truncation,
//! torn writes, malformed requests) into a structured
//! [`ErrorKind::CorruptArtifact`](crate::ErrorKind::CorruptArtifact)
//! error, never a panic.

use crate::error::PipelineError;

fn corrupt(msg: String) -> PipelineError {
    PipelineError::corrupt(msg)
}

/// Escapes a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (finite; NaN/∞ become null).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // shortest representation that round-trips
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Numbers keep their source text so `u64` seeds
/// survive without a round-trip through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source field order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a `u64`, if it parses as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64` (`null` reads back as NaN, the writer's
    /// encoding for non-finite values).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => n.parse().ok(),
            // the writer renders NaN/∞ as null
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A required string field of an object.
    pub fn str_field(&self, name: &str) -> Result<&str, PipelineError> {
        self.field(name)
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt(format!("missing string field `{name}`")))
    }

    /// A required integer field of an object.
    pub fn u64_field(&self, name: &str) -> Result<u64, PipelineError> {
        self.field(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| corrupt(format!("missing integer field `{name}`")))
    }

    /// A required number field of an object.
    pub fn f64_field(&self, name: &str) -> Result<f64, PipelineError> {
        self.field(name)
            .and_then(Value::as_f64)
            .ok_or_else(|| corrupt(format!("missing number field `{name}`")))
    }

    /// A required boolean field of an object.
    pub fn bool_field(&self, name: &str) -> Result<bool, PipelineError> {
        match self.field(name) {
            Some(Value::Bool(b)) => Ok(*b),
            _ => Err(corrupt(format!("missing boolean field `{name}`"))),
        }
    }

    /// A required array field of an object.
    pub fn arr_field(&self, name: &str) -> Result<&[Value], PipelineError> {
        match self.field(name) {
            Some(Value::Arr(items)) => Ok(items),
            _ => Err(corrupt(format!("missing array field `{name}`"))),
        }
    }
}

/// Parses one JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, PipelineError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(value)
}

/// Nesting deeper than this is rejected rather than risking the
/// recursive parser blowing the stack on adversarial input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> PipelineError {
        corrupt(format!("malformed JSON at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), PipelineError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, PipelineError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, PipelineError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, PipelineError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // the writer only emits \u for control
                            // chars; surrogate pairs are out of scope
                            out.push(
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // strings are valid UTF-8 (the input is &str);
                    // copy the whole multi-byte char through
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, PipelineError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits are UTF-8");
        if text.parse::<f64>().is_err() {
            return Err(self.err(&format!("bad number `{text}`")));
        }
        Ok(Value::Num(text.to_string()))
    }

    fn array(&mut self, depth: usize) -> Result<Value, PipelineError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, PipelineError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    #[test]
    fn values_and_accessors_round_trip() {
        let v = parse(
            "{\"s\": \"hi\", \"n\": 42, \"f\": 0.5, \"b\": true, \
             \"a\": [1, null], \"o\": {\"k\": false}}",
        )
        .unwrap();
        assert_eq!(v.str_field("s").unwrap(), "hi");
        assert_eq!(v.u64_field("n").unwrap(), 42);
        assert_eq!(v.f64_field("f").unwrap(), 0.5);
        assert!(v.bool_field("b").unwrap());
        assert_eq!(v.arr_field("a").unwrap().len(), 2);
        assert_eq!(
            v.field("o").unwrap().field("k").unwrap().as_bool(),
            Some(false)
        );
        assert!(v.field("missing").is_none());
        assert!(v.str_field("missing").is_err());
    }

    #[test]
    fn writer_output_parses_back() {
        let text = format!(
            "{{\"msg\": {}, \"x\": {}}}",
            json_str("line\n\"quoted\"\\"),
            json_f64(0.125)
        );
        let v = parse(&text).unwrap();
        assert_eq!(v.str_field("msg").unwrap(), "line\n\"quoted\"\\");
        assert_eq!(v.f64_field("x").unwrap(), 0.125);
        // non-finite floats render as null and read back as NaN
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn damage_is_a_corrupt_error_never_a_panic() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "{\"a\": 1e}",
        ] {
            let err = parse(bad).expect_err("damaged input parsed");
            assert_eq!(err.kind(), ErrorKind::CorruptArtifact, "input {bad:?}");
            assert!(!err.to_string().contains('\n'));
        }
        // a depth bomb is rejected, not a stack overflow
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
