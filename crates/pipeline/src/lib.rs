//! # remedy-pipeline
//!
//! End-to-end runs as a cached, parallel DAG of typed stages:
//!
//! ```text
//! Load ──► Discretize ──► Identify ──► branch: [Remedy] ─► Train ─► Audit
//! ```
//!
//! A [`Plan`] declares the dataset, the shared identification parameters,
//! and a fan-out of branches — each a (remedy technique, model family)
//! pair. [`run`] executes the DAG:
//!
//! * **Content-hashed caching** ([`cache`]) — every stage's key is the
//!   stable FNV-1a/128 digest of its inputs (upstream artifact hashes +
//!   its own parameters, via [`remedy_core::hash::StableHasher`]).
//!   Re-running a plan with one changed knob (say τ_c) replays every
//!   stage upstream of the change from `.remedy-cache/` and recomputes
//!   only what the change can affect.
//! * **Parallel branches** ([`engine`]) — branches share one identify
//!   artifact and fan out over scoped worker threads.
//! * **Run manifest** ([`manifest`]) — each run yields a [`RunManifest`]
//!   (serializable to `run.json`) recording per-stage wall time, cache
//!   hit/miss, artifact hashes, and per-branch fairness/accuracy metrics.
//! * **Determinism** — one master seed drives generation, splitting,
//!   remedy sampling, and training, and every artifact format round-trips
//!   floats bit-exactly, so identical plans produce byte-identical
//!   artifacts.
//!
//! ```no_run
//! use remedy_pipeline::{run, PipelineOptions, Plan};
//!
//! let plan = Plan::parse(
//!     "dataset compas\nrows 2000\nbranch base technique=none model=dt\n\
//!      branch ps technique=ps model=dt\n",
//! )?;
//! let manifest = run(&plan, &PipelineOptions::default())?;
//! println!("{}", manifest.to_json());
//! # Ok::<(), remedy_pipeline::PipelineError>(())
//! ```

//! * **Fault tolerance** — errors carry an [`ErrorKind`] taxonomy that
//!   drives policy: transient I/O is retried ([`retry`]), corrupt cache
//!   entries are quarantined and recomputed ([`cache`]), stage panics are
//!   contained to their branch ([`engine`]), and killed runs resume from
//!   their incrementally-flushed manifest. The [`failpoint`] registry
//!   (behind the `failpoints` feature) injects faults deterministically
//!   for tests.

pub mod cache;
pub mod engine;
pub mod error;
pub mod failpoint;
pub mod json;
pub mod manifest;
pub mod plan;
pub mod retry;
pub mod shard;
pub mod stages;

pub use cache::{ArtifactCache, CacheKey, GcPolicy, GcStats};
pub use engine::{run, run_with, PipelineOptions};
pub use error::{ErrorKind, PipelineError};
pub use manifest::{BranchFailure, BranchOutcome, RunManifest, RunStatus, StageRecord};
pub use plan::{BranchSpec, ModelFamily, Plan, SourceFormat};
pub use retry::RetryPolicy;
pub use shard::{worker_body, worker_threads, WorkerMode, WORKER_EXIT_FATAL};
