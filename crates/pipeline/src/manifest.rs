//! The run manifest: what executed, what was cached, what came out.
//!
//! Every pipeline run produces a [`RunManifest`] — one [`StageRecord`]
//! per executed (or cache-satisfied, or skipped) stage plus per-branch
//! outcome metrics. The manifest serializes to JSON by hand, in the same
//! no-dependency spirit as the `remedy-classifiers::persist` text formats.
//!
//! The manifest is also the pipeline's crash artifact: the engine
//! rewrites it atomically (temp file + rename) after the shared prefix
//! and after every branch, with `status: "running"`, so a killed run
//! always leaves a well-formed snapshot of how far it got. `remedy
//! pipeline --resume` parses that snapshot back with
//! [`RunManifest::from_json`] — a hand-rolled JSON reader that returns a
//! structured [`ErrorKind::CorruptArtifact`] error on malformed or
//! truncated input instead of panicking, because damaged manifests are
//! exactly what killed runs leave behind.

use crate::error::{ErrorKind, PipelineError};
use crate::json::{self, json_f64, json_str};
use remedy_fairness::{MetricsSummary, Statistic};

/// Where a run ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The run is still in flight (only ever seen in incremental
    /// snapshots — or in the manifest a killed run left behind).
    Running,
    /// Every branch completed.
    Ok,
    /// Some branches failed (panic or error) but at least one completed.
    Partial,
    /// Every branch failed.
    Failed,
}

impl RunStatus {
    /// The manifest JSON token.
    pub fn name(self) -> &'static str {
        match self {
            RunStatus::Running => "running",
            RunStatus::Ok => "ok",
            RunStatus::Partial => "partial",
            RunStatus::Failed => "failed",
        }
    }

    /// Parses a manifest JSON token back into a status.
    pub fn parse(token: &str) -> Option<RunStatus> {
        Some(match token {
            "running" => RunStatus::Running,
            "ok" => RunStatus::Ok,
            "partial" => RunStatus::Partial,
            "failed" => RunStatus::Failed,
            _ => return None,
        })
    }
}

impl std::fmt::Display for RunStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One stage execution in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage kind: `load`, `discretize`, `shard`, `count`, `identify`,
    /// `remedy`, `train`, or `audit`.
    pub stage: &'static str,
    /// Owning branch (`s0`, `s1`, … for shard/count stages), or `None`
    /// for the shared prefix.
    pub branch: Option<String>,
    /// The content-addressed cache key (32 hex digits).
    pub key: String,
    /// Stable hash of the produced artifact (32 hex digits).
    pub artifact_hash: String,
    /// Whether the artifact came from the cache.
    pub cache_hit: bool,
    /// Whether the stage was skipped entirely (`technique=none` remedy).
    pub skipped: bool,
    /// Wall-clock time spent in this stage, milliseconds.
    pub wall_ms: f64,
    /// Observability counters recorded under this stage's scope, sorted
    /// by name. Empty when the run's recorder was disabled.
    pub counters: Vec<(String, u64)>,
}

/// Outcome metrics of one branch.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchOutcome {
    /// Branch name from the plan.
    pub name: String,
    /// Technique label (`PS`, `US`, `DP`, `Massaging`) or `none`.
    pub technique: String,
    /// Model family token (`dt`, `rf`, `lg`, `nb`).
    pub model: String,
    /// The audit metrics.
    pub metrics: MetricsSummary,
}

/// A branch that did not produce an outcome: its error, classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchFailure {
    /// Branch name from the plan.
    pub name: String,
    /// The failure classification (`stage-panic`, `transient`, …).
    pub kind: ErrorKind,
    /// The rendered error, including stage/branch attribution.
    pub error: String,
}

/// The full record of one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Dataset source from the plan.
    pub dataset: String,
    /// Master seed.
    pub seed: u64,
    /// Worker threads used for branch fan-out (0 = all cores).
    pub threads: usize,
    /// Where the run ended up (or `Running` for in-flight snapshots).
    pub status: RunStatus,
    /// Total wall-clock time, milliseconds.
    pub total_ms: f64,
    /// Every stage, shared prefix first, then branch stages in branch
    /// order.
    pub stages: Vec<StageRecord>,
    /// Per-branch outcomes, in plan order.
    pub branches: Vec<BranchOutcome>,
    /// Branches that failed, in plan order; empty on an `Ok` run.
    pub failures: Vec<BranchFailure>,
}

impl RunManifest {
    /// Looks up a stage record by kind and owning branch.
    pub fn stage(&self, stage: &str, branch: Option<&str>) -> Option<&StageRecord> {
        self.stages
            .iter()
            .find(|s| s.stage == stage && s.branch.as_deref() == branch)
    }

    /// Looks up a branch outcome by name.
    pub fn branch(&self, name: &str) -> Option<&BranchOutcome> {
        self.branches.iter().find(|b| b.name == name)
    }

    /// Serializes the manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset\": {},\n", json_str(&self.dataset)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"status\": {},\n",
            json_str(self.status.name())
        ));
        out.push_str(&format!("  \"total_ms\": {},\n", json_f64(self.total_ms)));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"stage\": {}, ", json_str(s.stage)));
            match &s.branch {
                Some(b) => out.push_str(&format!("\"branch\": {}, ", json_str(b))),
                None => out.push_str("\"branch\": null, "),
            }
            out.push_str(&format!("\"key\": {}, ", json_str(&s.key)));
            out.push_str(&format!(
                "\"artifact_hash\": {}, ",
                json_str(&s.artifact_hash)
            ));
            out.push_str(&format!("\"cache_hit\": {}, ", s.cache_hit));
            out.push_str(&format!("\"skipped\": {}, ", s.skipped));
            out.push_str(&format!("\"wall_ms\": {}, ", json_f64(s.wall_ms)));
            let counters: Vec<String> = s
                .counters
                .iter()
                .map(|(name, value)| format!("{}: {value}", json_str(name)))
                .collect();
            out.push_str(&format!("\"counters\": {{{}}}", counters.join(", ")));
            out.push('}');
            if i + 1 < self.stages.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"branches\": [\n");
        for (i, b) in self.branches.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&b.name)));
            out.push_str(&format!("\"technique\": {}, ", json_str(&b.technique)));
            out.push_str(&format!("\"model\": {}, ", json_str(&b.model)));
            out.push_str(&format!(
                "\"stat\": {}, ",
                json_str(b.metrics.statistic.name())
            ));
            out.push_str(&format!("\"accuracy\": {}, ", json_f64(b.metrics.accuracy)));
            out.push_str(&format!(
                "\"fairness_index\": {}, ",
                json_f64(b.metrics.fairness_index)
            ));
            out.push_str(&format!(
                "\"unfair_subgroups\": {}, ",
                b.metrics.unfair_subgroups
            ));
            out.push_str(&format!("\"test_rows\": {}", b.metrics.test_rows));
            out.push('}');
            if i + 1 < self.branches.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&f.name)));
            out.push_str(&format!("\"kind\": {}, ", json_str(f.kind.name())));
            out.push_str(&format!("\"error\": {}", json_str(&f.error)));
            out.push('}');
            if i + 1 < self.failures.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON manifest to disk atomically (temp file + rename),
    /// so a reader — or a kill — never observes a half-written manifest.
    pub fn write_path(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Parses a manifest written by [`RunManifest::to_json`].
    ///
    /// Damaged input — truncated files, torn writes, hand-edits — yields
    /// an [`ErrorKind::CorruptArtifact`] error describing the first
    /// problem, never a panic.
    pub fn from_json(text: &str) -> Result<RunManifest, PipelineError> {
        let root = json::parse(text)?;
        let dataset = root.str_field("dataset")?.to_string();
        let seed = root.u64_field("seed")?;
        let threads = root.u64_field("threads")? as usize;
        let status = root.str_field("status").ok().map_or(
            // manifests predating the status field were complete runs
            Ok(RunStatus::Ok),
            |token| {
                RunStatus::parse(token)
                    .ok_or_else(|| corrupt(format!("unknown run status `{token}`")))
            },
        )?;
        let total_ms = root.f64_field("total_ms")?;

        let mut stages = Vec::new();
        for (i, s) in root.arr_field("stages")?.iter().enumerate() {
            let in_stage = |e: PipelineError| e.map_message(|m| format!("stages[{i}]: {m}"));
            let stage = intern_stage(s.str_field("stage").map_err(in_stage)?)
                .ok_or_else(|| corrupt(format!("stages[{i}]: unknown stage kind")))?;
            let branch = match s.field("branch") {
                Some(json::Value::Null) | None => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| corrupt(format!("stages[{i}]: branch is not a string")))?
                        .to_string(),
                ),
            };
            let mut counters: Vec<(String, u64)> = Vec::new();
            if let Some(json::Value::Obj(fields)) = s.field("counters") {
                for (name, v) in fields {
                    let value = v
                        .as_u64()
                        .ok_or_else(|| corrupt(format!("stages[{i}]: bad counter `{name}`")))?;
                    counters.push((name.clone(), value));
                }
            }
            stages.push(StageRecord {
                stage,
                branch,
                key: s.str_field("key").map_err(in_stage)?.to_string(),
                artifact_hash: s.str_field("artifact_hash").map_err(in_stage)?.to_string(),
                cache_hit: s.bool_field("cache_hit").map_err(in_stage)?,
                skipped: s.bool_field("skipped").map_err(in_stage)?,
                wall_ms: s.f64_field("wall_ms").map_err(in_stage)?,
                counters,
            });
        }

        let mut branches = Vec::new();
        for (i, b) in root.arr_field("branches")?.iter().enumerate() {
            let in_branch = |e: PipelineError| e.map_message(|m| format!("branches[{i}]: {m}"));
            let stat = b.str_field("stat").map_err(in_branch)?;
            let statistic = parse_stat(stat)
                .ok_or_else(|| corrupt(format!("branches[{i}]: unknown statistic `{stat}`")))?;
            branches.push(BranchOutcome {
                name: b.str_field("name").map_err(in_branch)?.to_string(),
                technique: b.str_field("technique").map_err(in_branch)?.to_string(),
                model: b.str_field("model").map_err(in_branch)?.to_string(),
                metrics: MetricsSummary {
                    statistic,
                    accuracy: b.f64_field("accuracy").map_err(in_branch)?,
                    fairness_index: b.f64_field("fairness_index").map_err(in_branch)?,
                    unfair_subgroups: b.u64_field("unfair_subgroups").map_err(in_branch)?,
                    test_rows: b.u64_field("test_rows").map_err(in_branch)?,
                },
            });
        }

        let mut failures = Vec::new();
        if let Ok(list) = root.arr_field("failures") {
            for (i, f) in list.iter().enumerate() {
                let in_failure =
                    |e: PipelineError| e.map_message(|m| format!("failures[{i}]: {m}"));
                let token = f.str_field("kind").map_err(in_failure)?;
                let kind = ErrorKind::parse(token)
                    .ok_or_else(|| corrupt(format!("failures[{i}]: unknown kind `{token}`")))?;
                failures.push(BranchFailure {
                    name: f.str_field("name").map_err(in_failure)?.to_string(),
                    kind,
                    error: f.str_field("error").map_err(in_failure)?.to_string(),
                });
            }
        }

        Ok(RunManifest {
            dataset,
            seed,
            threads,
            status,
            total_ms,
            stages,
            branches,
            failures,
        })
    }

    /// Reads and parses a manifest file.
    pub fn from_path(path: impl AsRef<std::path::Path>) -> Result<RunManifest, PipelineError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            PipelineError::fatal(format!("cannot read manifest {}: {e}", path.display()))
        })?;
        RunManifest::from_json(&text)
            .map_err(|e| e.map_message(|m| format!("manifest {}: {m}", path.display())))
    }
}

/// Maps a parsed stage kind onto the static names [`StageRecord`] uses;
/// anything else means the manifest was not written by this pipeline.
/// `shard` (a partitioned dataset artifact) and `count` (a worker's
/// mergeable leaf-count artifact) only appear in sharded runs.
fn intern_stage(stage: &str) -> Option<&'static str> {
    [
        "load",
        "discretize",
        "shard",
        "count",
        "identify",
        "remedy",
        "train",
        "audit",
    ]
    .into_iter()
    .find(|known| *known == stage)
}

/// Parses the audit statistic token the manifest writes (`FPR`, …).
fn parse_stat(token: &str) -> Option<Statistic> {
    Some(match token {
        "FPR" => Statistic::Fpr,
        "FNR" => Statistic::Fnr,
        "ACC" => Statistic::Accuracy,
        "SEL" => Statistic::SelectionRate,
        _ => return None,
    })
}

fn corrupt(msg: String) -> PipelineError {
    PipelineError::corrupt(msg)
}

// The JSON reader this parser was born with now lives in [`crate::json`],
// shared with the serve wire protocol.

#[cfg(test)]
mod tests {
    use super::*;
    use remedy_fairness::Statistic;

    fn sample() -> RunManifest {
        RunManifest {
            dataset: "compas".into(),
            seed: 42,
            threads: 2,
            status: RunStatus::Ok,
            total_ms: 12.5,
            stages: vec![
                StageRecord {
                    stage: "load",
                    branch: None,
                    key: "aa".into(),
                    artifact_hash: "bb".into(),
                    cache_hit: false,
                    skipped: false,
                    wall_ms: 1.0,
                    counters: vec![("rows_loaded".into(), 1000)],
                },
                StageRecord {
                    stage: "remedy",
                    branch: Some("ps".into()),
                    key: "cc".into(),
                    artifact_hash: "dd".into(),
                    cache_hit: true,
                    skipped: false,
                    wall_ms: 0.1,
                    counters: Vec::new(),
                },
            ],
            branches: vec![BranchOutcome {
                name: "ps".into(),
                technique: "PS".into(),
                model: "dt".into(),
                metrics: MetricsSummary {
                    statistic: Statistic::Fpr,
                    accuracy: 0.75,
                    fairness_index: 0.125,
                    unfair_subgroups: 3,
                    test_rows: 600,
                },
            }],
            failures: Vec::new(),
        }
    }

    #[test]
    fn lookups_find_records() {
        let m = sample();
        assert!(m.stage("load", None).is_some());
        assert!(m.stage("remedy", Some("ps")).unwrap().cache_hit);
        assert!(m.stage("remedy", None).is_none());
        assert_eq!(m.branch("ps").unwrap().metrics.unfair_subgroups, 3);
    }

    #[test]
    fn json_is_wellformed() {
        let json = sample().to_json();
        assert!(json.contains("\"dataset\": \"compas\""));
        assert!(json.contains("\"status\": \"ok\""));
        assert!(json.contains("\"cache_hit\": true"));
        assert!(json.contains("\"branch\": null"));
        assert!(json.contains("\"fairness_index\": 0.125"));
        assert!(json.contains("\"counters\": {\"rows_loaded\": 1000}"));
        assert!(json.contains("\"counters\": {}"));
        // crude structural check: balanced braces and brackets
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.5), "0.5");
    }

    #[test]
    fn json_round_trips_exactly() {
        let mut m = sample();
        m.status = RunStatus::Partial;
        m.failures.push(BranchFailure {
            name: "us".into(),
            kind: ErrorKind::StagePanic,
            error: "panicked: boom (stage train, branch us)".into(),
        });
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        // and the re-serialization is byte-identical
        assert_eq!(back.to_json(), m.to_json());
    }

    #[test]
    fn large_seed_survives_round_trip() {
        let mut m = sample();
        // not representable as f64: a float round-trip would corrupt it
        m.seed = u64::MAX - 1;
        assert_eq!(RunManifest::from_json(&m.to_json()).unwrap().seed, m.seed);
    }

    /// Regression: a damaged manifest — the exact artifact a killed run
    /// leaves behind — must come back as a structured error, not a panic.
    #[test]
    fn malformed_manifests_error_instead_of_panicking() {
        let full = sample().to_json();
        // truncate at every prefix length: none may panic, all must error
        for len in 0..full.len() - 1 {
            let err = RunManifest::from_json(&full[..len]).expect_err("truncated manifest parsed");
            assert_eq!(err.kind(), ErrorKind::CorruptArtifact, "at len {len}");
        }
        for bad in [
            "",
            "not json at all",
            "[1, 2, 3]",
            "{\"dataset\": 42}",
            "{\"dataset\": \"compas\", \"seed\": \"nine\"}",
            &format!("{full}trailing"),
            &full.replace("\"stage\": \"load\"", "\"stage\": \"warp\""),
            &full.replace("\"status\": \"ok\"", "\"status\": \"exploded\""),
        ] {
            let err = RunManifest::from_json(bad).expect_err("damaged manifest parsed");
            assert_eq!(err.kind(), ErrorKind::CorruptArtifact);
            assert!(
                !err.to_string().contains('\n'),
                "diagnostic must be one line"
            );
        }
    }

    #[test]
    fn manifests_without_a_status_field_read_as_ok() {
        let legacy = sample().to_json().replace("  \"status\": \"ok\",\n", "");
        let m = RunManifest::from_json(&legacy).unwrap();
        assert_eq!(m.status, RunStatus::Ok);
    }

    #[test]
    fn status_tokens_round_trip() {
        for status in [
            RunStatus::Running,
            RunStatus::Ok,
            RunStatus::Partial,
            RunStatus::Failed,
        ] {
            assert_eq!(RunStatus::parse(status.name()), Some(status));
        }
        assert_eq!(RunStatus::parse("nope"), None);
    }

    #[test]
    fn write_path_is_atomic_and_readable_back() {
        let dir = std::env::temp_dir().join("remedy_manifest_test_atomic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.json");
        let m = sample();
        m.write_path(&path).unwrap();
        assert_eq!(RunManifest::from_path(&path).unwrap(), m);
        // no temp litter
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
    }
}
