//! The run manifest: what executed, what was cached, what came out.
//!
//! Every pipeline run produces a [`RunManifest`] — one [`StageRecord`]
//! per executed (or cache-satisfied, or skipped) stage plus per-branch
//! outcome metrics. The manifest serializes to JSON by hand, in the same
//! no-dependency spirit as the `remedy-classifiers::persist` text formats.

use remedy_fairness::MetricsSummary;

/// One stage execution in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage kind: `load`, `discretize`, `identify`, `remedy`, `train`,
    /// or `audit`.
    pub stage: &'static str,
    /// Owning branch, or `None` for the shared prefix.
    pub branch: Option<String>,
    /// The content-addressed cache key (32 hex digits).
    pub key: String,
    /// Stable hash of the produced artifact (32 hex digits).
    pub artifact_hash: String,
    /// Whether the artifact came from the cache.
    pub cache_hit: bool,
    /// Whether the stage was skipped entirely (`technique=none` remedy).
    pub skipped: bool,
    /// Wall-clock time spent in this stage, milliseconds.
    pub wall_ms: f64,
    /// Observability counters recorded under this stage's scope, sorted
    /// by name. Empty when the run's recorder was disabled.
    pub counters: Vec<(String, u64)>,
}

/// Outcome metrics of one branch.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchOutcome {
    /// Branch name from the plan.
    pub name: String,
    /// Technique label (`PS`, `US`, `DP`, `Massaging`) or `none`.
    pub technique: String,
    /// Model family token (`dt`, `rf`, `lg`, `nb`).
    pub model: String,
    /// The audit metrics.
    pub metrics: MetricsSummary,
}

/// The full record of one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Dataset source from the plan.
    pub dataset: String,
    /// Master seed.
    pub seed: u64,
    /// Worker threads used for branch fan-out (0 = all cores).
    pub threads: usize,
    /// Total wall-clock time, milliseconds.
    pub total_ms: f64,
    /// Every stage, shared prefix first, then branch stages in branch
    /// order.
    pub stages: Vec<StageRecord>,
    /// Per-branch outcomes, in plan order.
    pub branches: Vec<BranchOutcome>,
}

impl RunManifest {
    /// Looks up a stage record by kind and owning branch.
    pub fn stage(&self, stage: &str, branch: Option<&str>) -> Option<&StageRecord> {
        self.stages
            .iter()
            .find(|s| s.stage == stage && s.branch.as_deref() == branch)
    }

    /// Looks up a branch outcome by name.
    pub fn branch(&self, name: &str) -> Option<&BranchOutcome> {
        self.branches.iter().find(|b| b.name == name)
    }

    /// Serializes the manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset\": {},\n", json_str(&self.dataset)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"total_ms\": {},\n", json_f64(self.total_ms)));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"stage\": {}, ", json_str(s.stage)));
            match &s.branch {
                Some(b) => out.push_str(&format!("\"branch\": {}, ", json_str(b))),
                None => out.push_str("\"branch\": null, "),
            }
            out.push_str(&format!("\"key\": {}, ", json_str(&s.key)));
            out.push_str(&format!(
                "\"artifact_hash\": {}, ",
                json_str(&s.artifact_hash)
            ));
            out.push_str(&format!("\"cache_hit\": {}, ", s.cache_hit));
            out.push_str(&format!("\"skipped\": {}, ", s.skipped));
            out.push_str(&format!("\"wall_ms\": {}, ", json_f64(s.wall_ms)));
            let counters: Vec<String> = s
                .counters
                .iter()
                .map(|(name, value)| format!("{}: {value}", json_str(name)))
                .collect();
            out.push_str(&format!("\"counters\": {{{}}}", counters.join(", ")));
            out.push('}');
            if i + 1 < self.stages.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"branches\": [\n");
        for (i, b) in self.branches.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&b.name)));
            out.push_str(&format!("\"technique\": {}, ", json_str(&b.technique)));
            out.push_str(&format!("\"model\": {}, ", json_str(&b.model)));
            out.push_str(&format!(
                "\"stat\": {}, ",
                json_str(b.metrics.statistic.name())
            ));
            out.push_str(&format!("\"accuracy\": {}, ", json_f64(b.metrics.accuracy)));
            out.push_str(&format!(
                "\"fairness_index\": {}, ",
                json_f64(b.metrics.fairness_index)
            ));
            out.push_str(&format!(
                "\"unfair_subgroups\": {}, ",
                b.metrics.unfair_subgroups
            ));
            out.push_str(&format!("\"test_rows\": {}", b.metrics.test_rows));
            out.push('}');
            if i + 1 < self.branches.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON manifest to disk.
    pub fn write_path(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (finite; NaN/∞ become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // shortest representation that round-trips
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remedy_fairness::Statistic;

    fn sample() -> RunManifest {
        RunManifest {
            dataset: "compas".into(),
            seed: 42,
            threads: 2,
            total_ms: 12.5,
            stages: vec![
                StageRecord {
                    stage: "load",
                    branch: None,
                    key: "aa".into(),
                    artifact_hash: "bb".into(),
                    cache_hit: false,
                    skipped: false,
                    wall_ms: 1.0,
                    counters: vec![("rows_loaded".into(), 1000)],
                },
                StageRecord {
                    stage: "remedy",
                    branch: Some("ps".into()),
                    key: "cc".into(),
                    artifact_hash: "dd".into(),
                    cache_hit: true,
                    skipped: false,
                    wall_ms: 0.1,
                    counters: Vec::new(),
                },
            ],
            branches: vec![BranchOutcome {
                name: "ps".into(),
                technique: "PS".into(),
                model: "dt".into(),
                metrics: MetricsSummary {
                    statistic: Statistic::Fpr,
                    accuracy: 0.75,
                    fairness_index: 0.125,
                    unfair_subgroups: 3,
                    test_rows: 600,
                },
            }],
        }
    }

    #[test]
    fn lookups_find_records() {
        let m = sample();
        assert!(m.stage("load", None).is_some());
        assert!(m.stage("remedy", Some("ps")).unwrap().cache_hit);
        assert!(m.stage("remedy", None).is_none());
        assert_eq!(m.branch("ps").unwrap().metrics.unfair_subgroups, 3);
    }

    #[test]
    fn json_is_wellformed() {
        let json = sample().to_json();
        assert!(json.contains("\"dataset\": \"compas\""));
        assert!(json.contains("\"cache_hit\": true"));
        assert!(json.contains("\"branch\": null"));
        assert!(json.contains("\"fairness_index\": 0.125"));
        assert!(json.contains("\"counters\": {\"rows_loaded\": 1000}"));
        assert!(json.contains("\"counters\": {}"));
        // crude structural check: balanced braces and brackets
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.5), "0.5");
    }
}
