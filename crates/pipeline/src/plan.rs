//! Declarative run plans.
//!
//! A plan is a line-oriented text file: `key value` settings followed by
//! one `branch` line per (remedy technique, model family) combination to
//! evaluate. `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! # compare preferential sampling against the unremedied baseline
//! dataset compas
//! rows 2000
//! seed 42
//! split 0.7
//! tau 0.1
//! branch base technique=none model=dt
//! branch ps-dt technique=ps model=dt
//! branch us-rf technique=us model=rf
//! ```
//!
//! Every branch shares the Load → Discretize → Identify prefix of the DAG;
//! branches themselves are independent and run in parallel.

use crate::error::PipelineError;
use remedy_core::{Enumeration, IbsParams, Neighborhood, RemedyParams, Scope, Technique};
use remedy_fairness::Statistic;
use std::path::Path;

/// Model families the pipeline can train *and persist as artifacts*.
///
/// This is the intersection of the trainable families and the
/// `remedy-classifiers::persist` formats (the MLP is excluded there by
/// design: it is seed-reproducible, so retraining is the persistence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFamily {
    /// CART decision tree.
    DecisionTree,
    /// Random forest.
    RandomForest,
    /// Logistic regression.
    LogisticRegression,
    /// Categorical naive Bayes.
    NaiveBayes,
}

impl ModelFamily {
    /// The plan-file token (`dt`, `rf`, `lg`, `nb`).
    pub fn token(self) -> &'static str {
        match self {
            ModelFamily::DecisionTree => "dt",
            ModelFamily::RandomForest => "rf",
            ModelFamily::LogisticRegression => "lg",
            ModelFamily::NaiveBayes => "nb",
        }
    }

    fn parse(s: &str) -> Result<Self, PipelineError> {
        match s {
            "dt" => Ok(ModelFamily::DecisionTree),
            "rf" => Ok(ModelFamily::RandomForest),
            "lg" => Ok(ModelFamily::LogisticRegression),
            "nb" => Ok(ModelFamily::NaiveBayes),
            other => Err(PipelineError::invalid_plan(format!(
                "model `{other}` is not dt|rf|lg|nb (nn cannot be persisted as an artifact)"
            ))),
        }
    }
}

/// How a file `dataset` source is decoded by the Load stage.
///
/// Whatever the on-disk form, the stage's artifact (and therefore its
/// cache key) is always the canonical text bytes, so converting a
/// source between text and binary never invalidates a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceFormat {
    /// Sniff the magic line: binary columnar, exact dataset text, else
    /// CSV. The default — existing plans behave identically.
    #[default]
    Auto,
    /// Decode as text (exact dataset text or CSV), never binary.
    Text,
    /// Require the binary columnar artifact format.
    Binary,
}

/// One leg of the fan-out: a remedy technique (or none) plus a model.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchSpec {
    /// Unique branch name; keys manifest entries.
    pub name: String,
    /// Remedy technique; `None` trains on the unremedied split.
    pub technique: Option<Technique>,
    /// Downstream model family.
    pub model: ModelFamily,
    /// Per-branch remedy neighborhood override (`neighborhood=`); `None`
    /// inherits the plan's shared setting. This is what lets one plan run
    /// the Fig. 8 Unit-vs-OrderedRadius ablation as a branch fan-out.
    pub neighborhood: Option<Neighborhood>,
}

/// A parsed pipeline plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Dataset source: `adult`, `compas`, `law`, or a CSV path.
    pub source: String,
    /// Synthetic row count; `0` uses the generator's paper-sized default.
    pub rows: usize,
    /// Master seed, threaded through generation, splitting, remedy
    /// sampling, and model training.
    pub seed: u64,
    /// Train fraction of the train/test split.
    pub split: f64,
    /// Label column (CSV sources only).
    pub label: Option<String>,
    /// Protected attribute names (CSV sources only).
    pub protected: Vec<String>,
    /// Positive label value (CSV sources only).
    pub positive: Option<String>,
    /// Quantile buckets for continuous CSV columns.
    pub bins: usize,
    /// On-disk format of a file source (`format text|binary`; defaults
    /// to autodetection).
    pub format: SourceFormat,
    /// Identification parameters shared by every branch.
    pub ibs: IbsParams,
    /// Audit statistic γ.
    pub stat: Statistic,
    /// Audit unfairness threshold `τ_d`.
    pub tau_d: f64,
    /// Minimum subgroup support in the audit.
    pub min_support: f64,
    /// The fan-out.
    pub branches: Vec<BranchSpec>,
}

impl Default for Plan {
    fn default() -> Self {
        Plan {
            source: String::new(),
            rows: 0,
            seed: 42,
            split: 0.7,
            label: None,
            protected: Vec::new(),
            positive: None,
            bins: 4,
            format: SourceFormat::Auto,
            ibs: IbsParams::default(),
            stat: Statistic::Fpr,
            tau_d: 0.1,
            min_support: 0.1,
            branches: Vec::new(),
        }
    }
}

impl Plan {
    /// Parses a plan from text.
    pub fn parse(text: &str) -> Result<Plan, PipelineError> {
        let mut plan = Plan::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| at(idx, format!("`{line}` has no value")))?;
            let value = value.trim();
            match key {
                "dataset" => plan.source = value.to_string(),
                "rows" => plan.rows = parse_num(idx, "rows", value)?,
                "seed" => plan.seed = parse_num(idx, "seed", value)?,
                "split" => plan.split = parse_num(idx, "split", value)?,
                "label" => plan.label = Some(value.to_string()),
                "protected" => {
                    plan.protected = value.split(',').map(|s| s.trim().to_string()).collect()
                }
                "positive" => plan.positive = Some(value.to_string()),
                "bins" => plan.bins = parse_num(idx, "bins", value)?,
                "format" => plan.format = parse_format(idx, value)?,
                "tau" => plan.ibs.tau_c = parse_num(idx, "tau", value)?,
                "min-size" => plan.ibs.min_size = parse_num(idx, "min-size", value)?,
                "neighborhood" => plan.ibs.neighborhood = parse_neighborhood(idx, value)?,
                "scope" => plan.ibs.scope = parse_scope(idx, value)?,
                "enumeration" => plan.ibs.enumeration = parse_enumeration(idx, value)?,
                "stat" => plan.stat = parse_stat(idx, value)?,
                "tau-d" => plan.tau_d = parse_num(idx, "tau-d", value)?,
                "min-support" => plan.min_support = parse_num(idx, "min-support", value)?,
                "branch" => plan.branches.push(parse_branch(idx, value)?),
                other => return Err(at(idx, format!("unknown key `{other}`"))),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Reads and parses a plan file.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Plan, PipelineError> {
        let text = std::fs::read_to_string(&path).map_err(|e| {
            PipelineError::fatal(format!("cannot read {}: {e}", path.as_ref().display()))
        })?;
        Plan::parse(&text)
    }

    /// The remedy parameters a branch runs with: identification settings
    /// come from the shared plan, the neighborhood honors the branch's
    /// override, and the seed is the master seed. Errors on a branch
    /// without a technique, or on parameters outside the builder's domain.
    pub fn remedy_params(&self, branch: &BranchSpec) -> Result<RemedyParams, PipelineError> {
        let technique = branch.technique.ok_or_else(|| {
            PipelineError::invalid_plan(format!("branch `{}` has no remedy technique", branch.name))
        })?;
        RemedyParams::builder()
            .technique(technique)
            .tau_c(self.ibs.tau_c)
            .min_size(self.ibs.min_size)
            .neighborhood(branch.neighborhood.unwrap_or(self.ibs.neighborhood))
            .scope(self.ibs.scope)
            .seed(self.seed)
            .enumeration(self.ibs.enumeration)
            .build()
            .map_err(|e| PipelineError::invalid_plan(format!("branch `{}`: {e}", branch.name)))
    }

    fn validate(&self) -> Result<(), PipelineError> {
        if self.source.is_empty() {
            return Err(PipelineError::invalid_plan("plan needs a `dataset` line"));
        }
        // the parser mutates `ibs` field-by-field, so the builder's domain
        // checks are re-run here over the shared params and every branch
        // neighborhood override
        self.ibs
            .validate()
            .map_err(|e| PipelineError::invalid_plan(format!("plan ibs params: {e}")))?;
        for b in &self.branches {
            if let Some(n) = b.neighborhood {
                let mut probe = self.ibs.clone();
                probe.neighborhood = n;
                probe.validate().map_err(|e| {
                    PipelineError::invalid_plan(format!("branch `{}`: {e}", b.name))
                })?;
            }
        }
        if self.branches.is_empty() {
            return Err(PipelineError::invalid_plan(
                "plan needs at least one `branch` line",
            ));
        }
        if !(self.split > 0.0 && self.split < 1.0) {
            return Err(PipelineError::invalid_plan(format!(
                "split {} is not in (0, 1)",
                self.split
            )));
        }
        let mut names: Vec<&str> = self.branches.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(PipelineError::invalid_plan(format!(
                "duplicate branch name `{}`",
                w[0]
            )));
        }
        let is_builtin = matches!(self.source.as_str(), "adult" | "compas" | "law");
        if is_builtin && self.format == SourceFormat::Binary {
            return Err(PipelineError::invalid_plan(
                "`format binary` needs a file dataset source, not a builtin",
            ));
        }
        // a binary columnar artifact carries its own schema, so the
        // label/protected lines raw CSV needs are only enforced when the
        // source could be CSV (auto or text format)
        let schemaless = !is_builtin && self.format != SourceFormat::Binary;
        if schemaless && self.label.is_none() {
            return Err(PipelineError::invalid_plan(
                "CSV sources need a `label` line (and `protected`)",
            ));
        }
        if schemaless && self.protected.is_empty() {
            return Err(PipelineError::invalid_plan(
                "CSV sources need a `protected` line",
            ));
        }
        Ok(())
    }
}

fn at(idx: usize, msg: String) -> PipelineError {
    PipelineError::invalid_plan(format!("plan line {}: {msg}", idx + 1))
}

fn parse_num<T: std::str::FromStr>(idx: usize, key: &str, value: &str) -> Result<T, PipelineError> {
    value
        .parse()
        .map_err(|_| at(idx, format!("bad {key} value `{value}`")))
}

fn parse_neighborhood(idx: usize, value: &str) -> Result<Neighborhood, PipelineError> {
    match value {
        "unit" | "1" => Ok(Neighborhood::Unit),
        "full" => Ok(Neighborhood::Full),
        other => other
            .parse::<f64>()
            .map(Neighborhood::OrderedRadius)
            .map_err(|_| {
                at(
                    idx,
                    format!("neighborhood `{other}` is not unit|full|<radius>"),
                )
            }),
    }
}

fn parse_scope(idx: usize, value: &str) -> Result<Scope, PipelineError> {
    match value {
        "lattice" => Ok(Scope::Lattice),
        "leaf" => Ok(Scope::Leaf),
        "top" => Ok(Scope::Top),
        other => Err(at(idx, format!("scope `{other}` is not lattice|leaf|top"))),
    }
}

fn parse_enumeration(idx: usize, value: &str) -> Result<Enumeration, PipelineError> {
    match value {
        "dense" => Ok(Enumeration::Dense),
        "pruned" => Ok(Enumeration::Pruned),
        other => Err(at(
            idx,
            format!("enumeration `{other}` is not dense|pruned"),
        )),
    }
}

fn parse_format(idx: usize, value: &str) -> Result<SourceFormat, PipelineError> {
    match value {
        "auto" => Ok(SourceFormat::Auto),
        "text" => Ok(SourceFormat::Text),
        "binary" => Ok(SourceFormat::Binary),
        other => Err(at(idx, format!("format `{other}` is not auto|text|binary"))),
    }
}

fn parse_stat(idx: usize, value: &str) -> Result<Statistic, PipelineError> {
    match value {
        "fpr" => Ok(Statistic::Fpr),
        "fnr" => Ok(Statistic::Fnr),
        "acc" => Ok(Statistic::Accuracy),
        "sel" => Ok(Statistic::SelectionRate),
        other => Err(at(idx, format!("stat `{other}` is not fpr|fnr|acc|sel"))),
    }
}

fn parse_branch(idx: usize, value: &str) -> Result<BranchSpec, PipelineError> {
    let mut fields = value.split_whitespace();
    let name = fields
        .next()
        .ok_or_else(|| at(idx, "branch needs a name".into()))?
        .to_string();
    let mut technique = None;
    let mut model = None;
    let mut neighborhood = None;
    for field in fields {
        let (k, v) = field
            .split_once('=')
            .ok_or_else(|| at(idx, format!("branch option `{field}` is not key=value")))?;
        match k {
            "technique" => {
                technique = Some(match v {
                    "none" => None,
                    "ps" | "preferential" => Some(Technique::PreferentialSampling),
                    "us" | "undersample" => Some(Technique::Undersampling),
                    "dp" | "oversample" => Some(Technique::Oversampling),
                    "massage" | "massaging" => Some(Technique::Massaging),
                    other => {
                        return Err(at(
                            idx,
                            format!("technique `{other}` is not none|ps|us|dp|massage"),
                        ))
                    }
                })
            }
            "model" => {
                model = Some(ModelFamily::parse(v).map_err(|e| at(idx, e.message().to_string()))?)
            }
            "neighborhood" => neighborhood = Some(parse_neighborhood(idx, v)?),
            other => return Err(at(idx, format!("unknown branch option `{other}`"))),
        }
    }
    Ok(BranchSpec {
        name,
        technique: technique
            .ok_or_else(|| at(idx, "branch needs technique=none|ps|us|dp|massage".into()))?,
        model: model.ok_or_else(|| at(idx, "branch needs model=dt|rf|lg|nb".into()))?,
        neighborhood,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAN: &str = "\
# demo plan
dataset compas
rows 1500
seed 7
split 0.7
tau 0.15        # inline comment
branch base technique=none model=dt
branch ps technique=ps model=dt
";

    #[test]
    fn parses_a_full_plan() {
        let plan = Plan::parse(PLAN).unwrap();
        assert_eq!(plan.source, "compas");
        assert_eq!(plan.rows, 1500);
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.ibs.tau_c, 0.15);
        assert_eq!(plan.branches.len(), 2);
        assert_eq!(plan.branches[0].technique, None);
        assert_eq!(
            plan.branches[1].technique,
            Some(Technique::PreferentialSampling)
        );
        assert_eq!(plan.branches[1].model, ModelFamily::DecisionTree);
    }

    #[test]
    fn rejects_bad_plans() {
        assert!(Plan::parse("dataset compas\n").is_err()); // no branch
        assert!(Plan::parse("branch a technique=ps model=dt\n").is_err()); // no dataset
        assert!(Plan::parse(
            "dataset compas\nbranch a technique=ps model=dt\nbranch a technique=us model=dt\n"
        )
        .is_err()); // duplicate name
        assert!(
            Plan::parse("dataset compas\nsplit 1.5\nbranch a technique=ps model=dt\n").is_err()
        );
        assert!(Plan::parse("dataset x.csv\nbranch a technique=ps model=dt\n").is_err()); // no label
        assert!(
            Plan::parse("dataset compas\nfrobnicate 3\nbranch a technique=ps model=dt\n").is_err()
        );
        assert!(Plan::parse("dataset compas\nbranch a technique=zz model=dt\n").is_err());
        assert!(Plan::parse("dataset compas\nbranch a technique=ps model=nn\n").is_err());
    }

    #[test]
    fn remedy_params_inherit_shared_settings() {
        let plan = Plan::parse(PLAN).unwrap();
        let params = plan.remedy_params(&plan.branches[1]).unwrap();
        assert_eq!(params.tau_c, 0.15);
        assert_eq!(params.seed, 7);
        assert_eq!(params.technique, Technique::PreferentialSampling);
        assert_eq!(params.neighborhood, Neighborhood::Unit);
        // the technique-less baseline has no remedy params
        assert!(plan.remedy_params(&plan.branches[0]).is_err());
    }

    #[test]
    fn enumeration_key_selects_the_mode() {
        let plan = Plan::parse(
            "dataset compas\n\
             enumeration pruned\n\
             branch ps technique=ps model=dt\n",
        )
        .unwrap();
        assert_eq!(plan.ibs.enumeration, Enumeration::Pruned);
        // remedy branches inherit the shared enumeration mode
        let params = plan.remedy_params(&plan.branches[0]).unwrap();
        assert_eq!(params.enumeration, Enumeration::Pruned);
        // default stays dense, so existing plans hash identically
        assert_eq!(
            Plan::parse(PLAN).unwrap().ibs.enumeration,
            Enumeration::Dense
        );
        assert!(Plan::parse(
            "dataset compas\nenumeration frobnicated\nbranch a technique=ps model=dt\n"
        )
        .is_err());
    }

    #[test]
    fn format_key_selects_the_decoder() {
        // default stays Auto, so existing plans parse and hash identically
        assert_eq!(Plan::parse(PLAN).unwrap().format, SourceFormat::Auto);
        let plan = Plan::parse(
            "dataset data.bin\n\
             format binary\n\
             branch a technique=ps model=dt\n",
        )
        .unwrap();
        assert_eq!(plan.format, SourceFormat::Binary);
        // binary artifacts carry a schema: no label/protected lines needed
        assert_eq!(plan.label, None);
        // text/auto file sources still demand CSV schema lines
        assert!(
            Plan::parse("dataset data.csv\nformat text\nbranch a technique=ps model=dt\n").is_err()
        );
        // builtins never read a file, so `format binary` is a mistake
        assert!(
            Plan::parse("dataset compas\nformat binary\nbranch a technique=ps model=dt\n").is_err()
        );
        assert!(
            Plan::parse("dataset compas\nformat parquet\nbranch a technique=ps model=dt\n")
                .is_err()
        );
    }

    #[test]
    fn branch_neighborhood_overrides_shared_setting() {
        let plan = Plan::parse(
            "dataset compas\n\
             neighborhood unit\n\
             branch unit technique=ps model=dt\n\
             branch ordered technique=ps model=dt neighborhood=1.5\n\
             branch full technique=ps model=dt neighborhood=full\n",
        )
        .unwrap();
        assert_eq!(plan.branches[0].neighborhood, None);
        assert_eq!(
            plan.branches[1].neighborhood,
            Some(Neighborhood::OrderedRadius(1.5))
        );
        assert_eq!(plan.branches[2].neighborhood, Some(Neighborhood::Full));
        let unit = plan.remedy_params(&plan.branches[0]).unwrap();
        let ordered = plan.remedy_params(&plan.branches[1]).unwrap();
        assert_eq!(unit.neighborhood, Neighborhood::Unit);
        assert_eq!(ordered.neighborhood, Neighborhood::OrderedRadius(1.5));
        // distinct neighborhoods must produce distinct remedy cache keys
        assert_ne!(unit.stable_hash(), ordered.stable_hash());
    }

    #[test]
    fn out_of_domain_params_are_rejected_at_parse_time() {
        // zero radius fails the builder's domain check
        assert!(
            Plan::parse("dataset compas\nbranch a technique=ps model=dt neighborhood=0.0\n")
                .is_err()
        );
        assert!(
            Plan::parse("dataset compas\nneighborhood -1.5\nbranch a technique=ps model=dt\n")
                .is_err()
        );
        assert!(Plan::parse("dataset compas\ntau -0.2\nbranch a technique=ps model=dt\n").is_err());
        assert!(
            Plan::parse("dataset compas\nmin-size 0\nbranch a technique=ps model=dt\n").is_err()
        );
    }
}
