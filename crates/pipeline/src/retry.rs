//! Bounded, deterministic retry with exponential backoff.
//!
//! Only [`ErrorKind::Transient`](crate::ErrorKind::Transient) failures
//! are retried; every other kind propagates immediately (retrying a
//! corrupt artifact or an invalid plan can only waste time). Backoff
//! doubles per attempt and is jittered by a [`SplitRng`] seeded from the
//! policy seed and the site name, so two runs of the same plan sleep the
//! same schedule — determinism extends to the failure path.

use crate::error::PipelineError;
use remedy_dataset::split::SplitRng;
use remedy_obs::Scope as ObsScope;
use std::time::Duration;

/// How transient failures are retried at one call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries *after* the first attempt; `0` disables retrying.
    pub retries: u32,
    /// Backoff before retry `n` is `base * 2ⁿ`, jittered to 50–100 %.
    pub base: Duration,
    /// Seed for the jitter stream (normally the plan's master seed).
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: transient errors propagate on first failure.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            retries: 0,
            base: Duration::ZERO,
            seed: 0,
        }
    }

    /// A policy with `retries` extra attempts starting at `base_ms`.
    pub fn new(retries: u32, base_ms: u64, seed: u64) -> RetryPolicy {
        RetryPolicy {
            retries,
            base: Duration::from_millis(base_ms),
            seed,
        }
    }

    /// The jittered backoff before retry `attempt` (0-based): the
    /// exponential delay scaled into its upper half by the seeded stream.
    pub fn backoff(&self, site: &str, attempt: u32) -> Duration {
        let mut rng = SplitRng::new(self.seed ^ site_hash(site) ^ u64::from(attempt));
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        exp.mul_f64(0.5 + rng.unit() * 0.5)
    }

    /// Runs `op`, retrying transient failures up to the policy bound.
    /// Each retry sleeps the jittered backoff and bumps `retry.attempts`
    /// on `obs`; giving up bumps `retry.exhausted`.
    pub fn run<T>(
        &self,
        site: &str,
        obs: &ObsScope,
        mut op: impl FnMut() -> Result<T, PipelineError>,
    ) -> Result<T, PipelineError> {
        for attempt in 0..=self.retries {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) if e.is_transient() && attempt < self.retries => {
                    obs.add("retry.attempts", 1);
                    std::thread::sleep(self.backoff(site, attempt));
                }
                Err(e) => {
                    if e.is_transient() && self.retries > 0 {
                        obs.add("retry.exhausted", 1);
                    }
                    return Err(e);
                }
            }
        }
        unreachable!("loop returns on the last attempt");
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// FNV-1a over the site name, for seeding the per-site jitter stream.
fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn policy() -> RetryPolicy {
        RetryPolicy::new(3, 1, 42)
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let failures = Cell::new(2u32);
        let result = policy().run("cache.store", &ObsScope::disabled(), || {
            if failures.get() > 0 {
                failures.set(failures.get() - 1);
                Err(PipelineError::transient("flaky"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(result.unwrap(), 7);
        assert_eq!(failures.get(), 0);
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let calls = Cell::new(0u32);
        let result: Result<(), _> = policy().run("cache.store", &ObsScope::disabled(), || {
            calls.set(calls.get() + 1);
            Err(PipelineError::fatal("disk on fire"))
        });
        assert!(result.is_err());
        assert_eq!(calls.get(), 1, "fatal error must not be retried");
    }

    #[test]
    fn bounded_attempts_then_error_propagates() {
        let rec = remedy_obs::Recorder::enabled();
        let obs = rec.scope("cache");
        let calls = Cell::new(0u32);
        let result: Result<(), _> = policy().run("cache.replay", &obs, || {
            calls.set(calls.get() + 1);
            Err(PipelineError::transient("always down"))
        });
        assert!(result.unwrap_err().is_transient());
        assert_eq!(calls.get(), 4, "1 attempt + 3 retries");
        let snap = rec.snapshot();
        assert_eq!(snap.counter("cache", "retry.attempts"), Some(3));
        assert_eq!(snap.counter("cache", "retry.exhausted"), Some(1));
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let p = RetryPolicy::new(5, 100, 9);
        for attempt in 0..5 {
            let d = p.backoff("site", attempt);
            assert_eq!(d, p.backoff("site", attempt), "same seed, same delay");
            let exp = Duration::from_millis(100 << attempt);
            assert!(
                d >= exp.mul_f64(0.5) && d <= exp,
                "attempt {attempt}: {d:?}"
            );
        }
        // different sites draw from different jitter streams
        assert_ne!(p.backoff("a", 0), p.backoff("b", 0));
        // zero-retry policies never sleep
        assert_eq!(RetryPolicy::none().backoff("x", 0), Duration::ZERO);
    }
}
