//! Sharded, multi-process execution of the counting half of identify.
//!
//! `sharded_identify_stage` replaces the single-process identify prefix
//! when a plan runs with `shards > 1`:
//!
//! ```text
//! partition ──► shard s0 ──► worker s0 ──► count s0 ─┐
//!          ├──► shard s1 ──► worker s1 ──► count s1 ─┼─► merge ─► identify
//!          └──► …                                    ┘
//! ```
//!
//! The training split is partitioned **stratified by packed protected
//! key** ([`remedy_dataset::store::partition_stratified`]): every region
//! key spreads near-evenly over the shards, so per-shard leaf maps are
//! balanced and no worker degenerates into the straggler. Each shard is
//! written to the artifact cache as a `remedy-columnar v1` artifact —
//! packed-key sidecar included, so workers skip the re-packing pass —
//! under the `shard` stage; each worker scans its shard into a
//! [`ShardCounts`] leaf accumulator and stores it as a `remedy-counts v1`
//! artifact under the `count` stage. The parent merges the per-shard
//! accumulators ([`ShardCounts::merge`]) and runs identification over
//! the merged lattice.
//!
//! ## Exactness
//!
//! Leaf counts are plain row sums, so merging per-shard accumulators is
//! exact under *any* row partition — stratification only balances work.
//! Workers emit **unpruned** leaves; support pruning is applied once,
//! globally, when the merged accumulator is lowered into a
//! [`SparseHierarchy`](remedy_core::SparseHierarchy) — pruning inside a
//! shard would drop regions whose global support clears the threshold.
//! Because `remedy-counts v1` sorts leaves by key, identification sorts
//! its output regions, and the identify cache key is a function of the
//! discretized artifact + split + IBS parameters only (never of `shards`
//! or thread counts), a sharded run stores a byte-identical `remedy-ibs
//! v1` artifact under the identical cache key as a single-process run.
//!
//! ## Workers and fault tolerance
//!
//! Workers run either as `remedy pipeline-worker` subprocesses
//! ([`WorkerMode::Subprocess`]) or as in-process threads
//! ([`WorkerMode::InProcess`]); both paths share [`worker_body`], which
//! is idempotent — it exits immediately if its count artifact is already
//! cached, which is also what makes `--resume` free: completed shards
//! replay from the content-addressed cache. A subprocess signals a
//! permanent failure with exit code 2 ([`WORKER_EXIT_FATAL`]); any other
//! non-zero exit — including being killed — is classified
//! [`ErrorKind::Transient`](crate::ErrorKind) and retried
//! deterministically under the run's [`RetryPolicy`](crate::RetryPolicy),
//! re-running just that shard. While shards are in flight the parent
//! pins their cache entries via a `status: "running"` manifest
//! ([`ArtifactCache::pin_run`]) so a concurrent `cache gc` cannot sweep
//! them.
//!
//! ## Threads
//!
//! With `--shards N --threads T`, each worker scans with
//! `max(1, T / N)` threads ([`worker_threads`]) so the shard fleet never
//! oversubscribes the machine; the final merged identification runs in
//! the parent with the full `T`.

use crate::cache::{ArtifactCache, CacheKey};
use crate::error::PipelineError;
use crate::failpoint;
use crate::manifest::{RunManifest, RunStatus, StageRecord};
use crate::plan::Plan;
use crate::stages::{identify_key, run_stage, write_split, StageOutput};
use remedy_core::hash::{stable_hash, StableHasher};
use remedy_core::{
    identify_in_parallel_with, identify_in_sparse_with, persist as ibs_persist, Algorithm,
    ShardCounts,
};
use remedy_dataset::{store, Dataset};
use remedy_obs::Span;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Exit code a `pipeline-worker` subprocess uses for permanent failures
/// (corrupt shard artifact, invalid layout): the parent must not retry.
/// Any other non-zero exit — a panic, a kill, a transient I/O error —
/// is retried.
pub const WORKER_EXIT_FATAL: i32 = 2;

/// How shard count workers execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMode {
    /// Spawn `<exe> pipeline-worker …` subprocesses; `None` resolves the
    /// current executable. Crash isolation: a worker death (any signal)
    /// is a transient, retryable fault in the parent.
    Subprocess(Option<PathBuf>),
    /// Run [`worker_body`] on an in-process thread. The default for
    /// library users and tests (where `current_exe` is the test harness,
    /// not the CLI).
    InProcess,
}

/// Per-worker scan threads under `--shards N --threads T`: `max(1, T/N)`,
/// with `T = 0` meaning all cores — so the fleet as a whole never
/// oversubscribes the machine.
pub fn worker_threads(threads: usize, shards: usize) -> usize {
    let total = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    (total / shards.max(1)).max(1)
}

/// The cache key of shard `index` of `shards`: a function of the
/// discretized artifact, the split, and the shard geometry — thread
/// counts never participate.
pub(crate) fn shard_key(
    plan: &Plan,
    discretized_hash: &str,
    shards: usize,
    index: usize,
) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_str("shard");
    h.write_str(discretized_hash);
    write_split(&mut h, plan);
    h.write_u64(shards as u64);
    h.write_u64(index as u64);
    CacheKey::from_hasher(&h)
}

/// The cache key of a worker's count artifact: chained through the shard
/// artifact's content hash, so a changed shard invalidates exactly its
/// own counts.
pub(crate) fn count_key(shard_artifact_hash: &str) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_str("count");
    h.write_str(shard_artifact_hash);
    CacheKey::from_hasher(&h)
}

/// One worker's job, shared verbatim by the `pipeline-worker` CLI
/// subcommand and [`WorkerMode::InProcess`] threads: replay the shard
/// artifact, scan it into a [`ShardCounts`] accumulator (reusing the
/// persisted packed-key sidecar when the artifact carries one), and
/// store the accumulator as a `remedy-counts v1` artifact.
///
/// Idempotent: if the count artifact is already cached (a prior attempt
/// finished, or the run is resuming) the worker exits immediately unless
/// `force` is set.
pub fn worker_body(
    cache: &ArtifactCache,
    shard: CacheKey,
    count: CacheKey,
    threads: usize,
    force: bool,
) -> Result<(), PipelineError> {
    if !force && cache.lookup("count", count).is_some() {
        return Ok(());
    }
    let bytes = cache.lookup_bytes("shard", shard).ok_or_else(|| {
        PipelineError::corrupt(format!("shard artifact {} missing from cache", shard.hex()))
    })?;
    let stored = store::from_bytes(&bytes)
        .map_err(|e| PipelineError::corrupt(format!("cannot decode shard artifact: {e}")))?;
    let counts = match &stored.packed {
        Some(packed) => ShardCounts::scan_packed(&stored.data, packed, threads),
        None => ShardCounts::scan(&stored.data, threads),
    }
    .map_err(|e| PipelineError::fatal(format!("cannot scan shard: {e}")))?;
    cache.store(
        "count",
        count,
        &ibs_persist::counts_to_text(&counts),
        &format!("count rows={}", stored.data.len()),
    )
}

/// What one shard contributed: its two manifest records plus the parsed
/// accumulator.
struct ShardRun {
    records: [StageRecord; 2],
    counts: ShardCounts,
}

/// Runs the sharded identify prefix; returns the identify [`StageOutput`]
/// (byte-identical, same cache key, as the single-process
/// [`identify_stage`](crate::stages::identify_stage)) plus the `shard` /
/// `count` stage records in shard order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sharded_identify_stage(
    plan: &Plan,
    discretized: &StageOutput,
    train_set: &Dataset,
    shards: usize,
    threads: usize,
    worker: &WorkerMode,
    force: bool,
    cache: &ArtifactCache,
    run_span: &Span,
) -> Result<(StageOutput, Vec<StageRecord>), PipelineError> {
    let ikey = identify_key(plan, &discretized.artifact_hash);
    // whole-prefix replay: with the identify artifact cached there is
    // nothing to shard — the single-stage path serves the hit
    if !force {
        let obs = run_span.child_scope("identify");
        let start = Instant::now();
        if let Some(text) = cache.lookup("identify", ikey) {
            obs.add("cache_hits", 1);
            let out = crate::stages::finish("identify", None, ikey, true, text, start, &obs);
            return Ok((out, Vec::new()));
        }
    }

    // partition + serialize: keys (and the pin manifest) need every
    // shard's content hash before any worker starts
    let parts = store::partition_stratified(train_set, shards);
    let wthreads = worker_threads(threads, shards);
    struct Prepared {
        index: usize,
        bytes: Vec<u8>,
        skey: CacheKey,
        shard_hash: String,
        ckey: CacheKey,
    }
    let prepared: Vec<Prepared> = parts
        .iter()
        .enumerate()
        .map(|(index, part)| {
            let bytes = store::to_binary(part);
            let shard_hash = format!("{:032x}", stable_hash(&bytes));
            let skey = shard_key(plan, &discretized.artifact_hash, shards, index);
            Prepared {
                index,
                ckey: count_key(&shard_hash),
                skey,
                shard_hash,
                bytes,
            }
        })
        .collect();

    // pin every shard/count entry against gc for the life of the run
    let pin_manifest = |status: RunStatus| RunManifest {
        dataset: plan.source.clone(),
        seed: plan.seed,
        threads,
        status,
        total_ms: 0.0,
        stages: prepared
            .iter()
            .flat_map(|p| {
                let record = |stage: &'static str, key: &CacheKey| StageRecord {
                    stage,
                    branch: Some(format!("s{}", p.index)),
                    key: key.hex(),
                    artifact_hash: p.shard_hash.clone(),
                    cache_hit: false,
                    skipped: false,
                    wall_ms: 0.0,
                    counters: Vec::new(),
                };
                [record("shard", &p.skey), record("count", &p.ckey)]
            })
            .collect(),
        branches: Vec::new(),
        failures: Vec::new(),
    };
    let run_id = ikey.hex();
    cache.pin_run(&run_id, &pin_manifest(RunStatus::Running))?;

    // fan the workers out: every shard gets its own supervisor thread,
    // and each worker failure is contained (and retried) per shard
    let results: Mutex<Vec<(usize, Result<ShardRun, PipelineError>)>> =
        Mutex::new(Vec::with_capacity(shards));
    std::thread::scope(|scope| {
        for p in &prepared {
            scope.spawn(|| {
                let result = run_shard(p.index, &p.bytes, p.skey, &p.shard_hash, p.ckey, {
                    ShardContext {
                        cache,
                        worker,
                        wthreads,
                        force,
                        run_span,
                    }
                });
                results.lock().unwrap().push((p.index, result));
            });
        }
    });
    let mut runs = results.into_inner().unwrap();
    runs.sort_by_key(|(index, _)| *index);

    // a failed shard fails the run (shards are the shared prefix); the
    // pin is released either way so gc never leaks
    let collected: Result<Vec<ShardRun>, PipelineError> =
        runs.into_iter().map(|(_, r)| r).collect();
    let shard_runs = match collected {
        Ok(shard_runs) => shard_runs,
        Err(e) => {
            let _ = cache.pin_run(&run_id, &pin_manifest(RunStatus::Failed));
            return Err(e);
        }
    };

    // merge in shard order (associative + commutative, but a fixed order
    // keeps any float-free invariant trivially reproducible)
    let mut records: Vec<StageRecord> = Vec::with_capacity(shards * 2);
    let mut merged: Option<ShardCounts> = None;
    for run in shard_runs {
        let [shard_rec, count_rec] = run.records;
        records.push(shard_rec);
        records.push(count_rec);
        match merged.as_mut() {
            None => merged = Some(run.counts),
            Some(acc) => acc
                .merge(&run.counts)
                .map_err(|e| PipelineError::corrupt(e.to_string()).in_stage("count"))?,
        }
    }
    let merged = merged.expect("shards >= 1");

    // identify over the merged lattice: same key, same description, and
    // byte-identical text as the single-process stage
    let params = plan.ibs.clone();
    let obs = run_span.child_scope("identify");
    let inner_obs = obs.clone();
    let identify = run_stage(
        cache,
        "identify",
        None,
        ikey,
        force,
        &format!("identify tau={} k={}", params.tau_c, params.min_size),
        &obs,
        move || {
            let algorithm = Algorithm::Optimized;
            let regions = match params.enumeration {
                remedy_core::Enumeration::Dense => {
                    let hierarchy = merged
                        .into_hierarchy()
                        .map_err(|e| PipelineError::invalid_plan(e.to_string()))?;
                    identify_in_parallel_with(&hierarchy, &params, algorithm, threads, &inner_obs)
                }
                remedy_core::Enumeration::Pruned => {
                    let sparse = merged
                        .into_sparse(params.min_size)
                        .map_err(|e| PipelineError::invalid_plan(e.to_string()))?;
                    identify_in_sparse_with(&sparse, &params, algorithm, &inner_obs)
                }
            };
            Ok(ibs_persist::regions_to_text(&regions))
        },
    );
    // the run is done (or failed): release the gc pins either way
    let final_status = if identify.is_ok() {
        RunStatus::Ok
    } else {
        RunStatus::Failed
    };
    let _ = cache.pin_run(&run_id, &pin_manifest(final_status));
    Ok((identify?, records))
}

/// Everything a per-shard supervisor thread needs.
struct ShardContext<'a> {
    cache: &'a ArtifactCache,
    worker: &'a WorkerMode,
    wthreads: usize,
    force: bool,
    run_span: &'a Span,
}

/// Stores one shard artifact, supervises its worker (with per-shard
/// retry of transient deaths), and replays + parses the count artifact.
fn run_shard(
    index: usize,
    bytes: &[u8],
    skey: CacheKey,
    shard_hash: &str,
    ckey: CacheKey,
    ctx: ShardContext<'_>,
) -> Result<ShardRun, PipelineError> {
    let branch = format!("s{index}");
    let obs = ctx.run_span.child_scope(&format!("{branch}/shard"));
    let start = Instant::now();
    let shard_hit = !ctx.force && ctx.cache.lookup_bytes("shard", skey).is_some();
    if !shard_hit {
        ctx.cache
            .store_bytes(
                "shard",
                skey,
                bytes,
                &format!("shard {index} ({} bytes)", bytes.len()),
            )
            .map_err(|e| e.in_stage("shard").in_branch(&branch))?;
    }
    obs.add(
        if shard_hit {
            "cache_hits"
        } else {
            "cache_misses"
        },
        1,
    );
    let record =
        |stage: &'static str, key: CacheKey, hit, hash: &str, t0: Instant, counters| StageRecord {
            stage,
            branch: Some(branch.clone()),
            key: key.hex(),
            artifact_hash: hash.to_string(),
            cache_hit: hit,
            skipped: false,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            counters,
        };
    let shard_record = record("shard", skey, shard_hit, shard_hash, start, obs.counters());

    let obs = ctx.run_span.child_scope(&format!("{branch}/count"));
    let start = Instant::now();
    let count_hit = !ctx.force && ctx.cache.lookup("count", ckey).is_some();
    if !count_hit {
        let retry = ctx.cache.retry();
        retry
            .run(&format!("shard.worker.{branch}"), &obs, || {
                run_worker_once(&branch, skey, ckey, &ctx)
            })
            .map_err(|e| e.in_stage("count").in_branch(&branch))?;
    }
    obs.add(
        if count_hit {
            "cache_hits"
        } else {
            "cache_misses"
        },
        1,
    );
    let text = ctx.cache.lookup("count", ckey).ok_or_else(|| {
        PipelineError::corrupt(format!("worker {branch} stored no count artifact"))
            .in_stage("count")
            .in_branch(&branch)
    })?;
    let counts = ibs_persist::counts_from_text(&text).map_err(|e| {
        PipelineError::corrupt(format!("bad count artifact from worker {branch}: {e}"))
            .in_stage("count")
            .in_branch(&branch)
    })?;
    let count_hash = format!("{:032x}", stable_hash(text.as_bytes()));
    let count_record = record("count", ckey, count_hit, &count_hash, start, obs.counters());
    Ok(ShardRun {
        records: [shard_record, count_record],
        counts,
    })
}

/// One worker attempt. The `shard.worker.s<i>` failpoint is checked in
/// the *parent* per attempt — in subprocess mode an armed fault spawns
/// the child and then kills it, exercising the real
/// death-by-exit-status path (a worker-side failpoint would re-fire on
/// every respawn, since each subprocess re-reads `REMEDY_FAILPOINTS`).
fn run_worker_once(
    branch: &str,
    skey: CacheKey,
    ckey: CacheKey,
    ctx: &ShardContext<'_>,
) -> Result<(), PipelineError> {
    match ctx.worker {
        WorkerMode::InProcess => {
            failpoint::check("shard.worker", branch)?;
            worker_body(ctx.cache, skey, ckey, ctx.wthreads, ctx.force)
        }
        WorkerMode::Subprocess(exe) => {
            let kill_after_spawn = failpoint::check("shard.worker", branch).is_err();
            let exe = match exe {
                Some(path) => path.clone(),
                None => std::env::current_exe().map_err(|e| {
                    PipelineError::fatal(format!("cannot resolve worker executable: {e}"))
                })?,
            };
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("pipeline-worker")
                .arg("--cache")
                .arg(ctx.cache.root())
                .arg("--shard-key")
                .arg(skey.hex())
                .arg("--count-key")
                .arg(ckey.hex())
                .arg("--threads")
                .arg(ctx.wthreads.to_string());
            if ctx.force {
                cmd.arg("--force");
            }
            let mut child = cmd
                .spawn()
                .map_err(|e| PipelineError::fatal(format!("cannot spawn worker {branch}: {e}")))?;
            if kill_after_spawn {
                let _ = child.kill();
            }
            let status = child.wait().map_err(|e| {
                PipelineError::transient(format!("cannot reap worker {branch}: {e}"))
            })?;
            match status.code() {
                Some(0) => Ok(()),
                Some(WORKER_EXIT_FATAL) => Err(PipelineError::fatal(format!(
                    "worker {branch} failed permanently (exit {WORKER_EXIT_FATAL})"
                ))),
                Some(code) => Err(PipelineError::transient(format!(
                    "worker {branch} died (exit {code})"
                ))),
                None => Err(PipelineError::transient(format!(
                    "worker {branch} killed by signal"
                ))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_threads_never_oversubscribe() {
        assert_eq!(worker_threads(8, 4), 2);
        assert_eq!(worker_threads(8, 8), 1);
        assert_eq!(worker_threads(2, 8), 1, "floor is one thread");
        assert_eq!(worker_threads(9, 4), 2, "integer division");
        assert!(worker_threads(0, 2) >= 1, "0 = all cores, split evenly");
    }

    #[test]
    fn shard_keys_are_a_function_of_geometry_not_threads() {
        let plan =
            Plan::parse("dataset compas\nrows 500\nbranch base technique=none model=dt\n").unwrap();
        let a = shard_key(&plan, "abc", 4, 0);
        assert_eq!(a, shard_key(&plan, "abc", 4, 0));
        assert_ne!(a, shard_key(&plan, "abc", 4, 1), "index participates");
        assert_ne!(a, shard_key(&plan, "abc", 2, 0), "shard count participates");
        assert_ne!(a, shard_key(&plan, "xyz", 4, 0), "upstream hash chains");
    }
}
