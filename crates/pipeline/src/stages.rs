//! The six typed stages and the shared cached-execution wrapper.
//!
//! Each stage function derives its [`CacheKey`] from the stage inputs —
//! upstream artifact hashes plus its own parameters — then either replays
//! the cached artifact or computes, stores, and returns a fresh one.
//! Artifacts are the exact text formats of the member crates
//! (`remedy-dataset v1`, `remedy-ibs v1`, `remedy-model v1`,
//! `remedy-metrics v1`), so a cache hit is byte-identical to a re-run.
//!
//! Worker-thread counts are deliberately *excluded* from every key: they
//! change wall time, never results.

use crate::cache::{ArtifactCache, CacheKey};
use crate::error::{panic_message, PipelineError};
use crate::failpoint;
use crate::manifest::StageRecord;
use crate::plan::{ModelFamily, Plan, SourceFormat};
use remedy_classifiers::persist as model_persist;
use remedy_classifiers::{
    accuracy, DecisionTree, DecisionTreeParams, LogisticRegression, LogisticRegressionParams,
    Model, NaiveBayes, RandomForest, RandomForestParams,
};
use remedy_core::hash::{stable_hash, StableHasher};
use remedy_core::{
    identify_in_parallel_with, persist as ibs_persist, Algorithm, Hierarchy, RemedyParams,
};
use remedy_dataset::csv::{LoadOptions, RawTable};
use remedy_dataset::persist as data_persist;
use remedy_dataset::split::train_test_split;
use remedy_dataset::{format as data_format, store, synth, Dataset, Format};
use remedy_fairness::{fairness_index, Explorer, FairnessIndexParams, MetricsSummary};
use remedy_obs::Scope as ObsScope;
use std::time::Instant;

/// Magic header of exact dataset artifacts (used to recognize pass-through
/// inputs in the discretize stage).
const DATASET_MAGIC: &str = "remedy-dataset v1";

/// Artifact text plus its manifest record.
#[derive(Debug, Clone)]
pub struct StageOutput {
    /// The artifact's text payload.
    pub text: String,
    /// Hex stable hash of `text` (chained into downstream keys).
    pub artifact_hash: String,
    /// Manifest entry for this execution.
    pub record: StageRecord,
}

/// Executes one stage through the cache: replay on hit, compute + store on
/// miss, record either way. The stage runs under one span in `obs`, gets
/// `cache_hits`/`cache_misses` counters, and its record carries every
/// counter recorded under the stage's scope (including what the compute
/// closure itself recorded).
///
/// The compute closure runs under `catch_unwind`: a panicking stage
/// surfaces as a [`StagePanic`](crate::ErrorKind) error attributed to the
/// stage, which the engine contains at the branch boundary. Every error
/// leaving this function carries the stage name.
#[allow(clippy::too_many_arguments)]
pub fn run_stage(
    cache: &ArtifactCache,
    stage: &'static str,
    branch: Option<&str>,
    key: CacheKey,
    force: bool,
    description: &str,
    obs: &ObsScope,
    compute: impl FnOnce() -> Result<String, PipelineError>,
) -> Result<StageOutput, PipelineError> {
    let _span = obs.span(stage);
    let start = Instant::now();
    if !force {
        if let Some(text) = cache.lookup(stage, key) {
            obs.add("cache_hits", 1);
            return Ok(finish(stage, branch, key, true, text, start, obs));
        }
    }
    obs.add("cache_misses", 1);
    let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        failpoint::check("stage.run", stage)?;
        compute()
    }));
    let text = match computed {
        Ok(result) => result.map_err(|e| e.in_stage(stage))?,
        Err(payload) => {
            obs.add("panics", 1);
            return Err(PipelineError::stage_panic(panic_message(payload.as_ref())).in_stage(stage));
        }
    };
    cache
        .store(stage, key, &text, description)
        .map_err(|e| e.in_stage(stage))?;
    Ok(finish(stage, branch, key, false, text, start, obs))
}

pub(crate) fn finish(
    stage: &'static str,
    branch: Option<&str>,
    key: CacheKey,
    cache_hit: bool,
    text: String,
    start: Instant,
    obs: &ObsScope,
) -> StageOutput {
    let artifact_hash = format!("{:032x}", stable_hash(text.as_bytes()));
    StageOutput {
        record: StageRecord {
            stage,
            branch: branch.map(String::from),
            key: key.hex(),
            artifact_hash: artifact_hash.clone(),
            cache_hit,
            skipped: false,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            counters: obs.counters(),
        },
        artifact_hash,
        text,
    }
}

/// Whether the plan's source is a built-in synthetic generator.
fn is_builtin(source: &str) -> bool {
    matches!(source, "adult" | "compas" | "law")
}

/// Load: raw bytes into the pipeline.
///
/// Built-in sources generate their synthetic dataset (keyed by name, row
/// count, and seed) and emit it as an exact dataset artifact. File sources
/// emit text, keyed by its *content* hash so editing the file invalidates
/// everything downstream while renaming it does not. A binary columnar
/// source (`format binary`, or autodetected by magic) is decoded and
/// re-emitted as its canonical text form — byte-identical to the text
/// file it was converted from — so the stage key, the artifact, and every
/// downstream cache entry are exactly those of the original text run.
pub fn load_stage(
    plan: &Plan,
    cache: &ArtifactCache,
    force: bool,
    obs: &ObsScope,
) -> Result<StageOutput, PipelineError> {
    let mut h = StableHasher::new();
    h.write_str("load");
    if is_builtin(&plan.source) {
        h.write_str(&plan.source);
        h.write_u64(plan.rows as u64);
        h.write_u64(plan.seed);
        let key = CacheKey::from_hasher(&h);
        let (source, rows, seed) = (plan.source.clone(), plan.rows, plan.seed);
        run_stage(
            cache,
            "load",
            None,
            key,
            force,
            &format!("load {source} rows={rows} seed={seed}"),
            obs,
            move || {
                let data = match (source.as_str(), rows) {
                    ("adult", 0) => synth::adult(seed),
                    ("adult", n) => synth::adult_n(n, seed),
                    ("compas", 0) => synth::compas(seed),
                    ("compas", n) => synth::compas_n(n, seed),
                    ("law", 0) => synth::law_school(seed),
                    ("law", n) => synth::law_school_n(n, seed),
                    _ => unreachable!("is_builtin checked"),
                };
                Ok(data_persist::dataset_to_text(&data))
            },
        )
    } else {
        let bytes = std::fs::read(&plan.source)
            .map_err(|e| PipelineError::fatal(format!("cannot read {}: {e}", plan.source)))?;
        let is_columnar = store::sniff(&bytes) == Some(Format::Binary);
        if plan.format == SourceFormat::Binary && !is_columnar {
            return Err(PipelineError::fatal(format!(
                "{} is not a remedy-columnar artifact (plan says `format binary`)",
                plan.source
            )));
        }
        let text = if is_columnar && plan.format != SourceFormat::Text {
            let stored = store::from_bytes_unpacked(&bytes)
                .map_err(|e| PipelineError::fatal(format!("cannot decode {}: {e}", plan.source)))?;
            let text = data_persist::dataset_to_text(&stored.data);
            // the header pins the canonical text's digest; a mismatch
            // means the reconstruction would not replay text-keyed caches
            if data_format::content_digest(text.as_bytes()) != stored.digest {
                return Err(PipelineError::fatal(format!(
                    "{}: canonical-text digest mismatch in the columnar header",
                    plan.source
                )));
            }
            text
        } else {
            String::from_utf8(bytes)
                .map_err(|_| PipelineError::fatal(format!("{} is not UTF-8 text", plan.source)))?
        };
        h.write_str("csv");
        h.write(text.as_bytes());
        let key = CacheKey::from_hasher(&h);
        run_stage(
            cache,
            "load",
            None,
            key,
            force,
            &format!("load {}", plan.source),
            obs,
            move || Ok(text),
        )
    }
}

/// Discretize: normalize the loaded bytes into an exact dataset artifact.
///
/// CSV inputs get their label/protected columns resolved and continuous
/// columns quantile-bucketized; already-exact inputs (built-in sources)
/// pass through unchanged. Either way the output is the canonical
/// categorical dataset every downstream stage consumes.
pub fn discretize_stage(
    plan: &Plan,
    load: &StageOutput,
    cache: &ArtifactCache,
    force: bool,
    obs: &ObsScope,
) -> Result<StageOutput, PipelineError> {
    let mut h = StableHasher::new();
    h.write_str("discretize");
    h.write_str(&load.artifact_hash);
    h.write_str(plan.label.as_deref().unwrap_or(""));
    for p in &plan.protected {
        h.write_str(p);
    }
    h.write_str(plan.positive.as_deref().unwrap_or(""));
    h.write_u64(plan.bins as u64);
    let key = CacheKey::from_hasher(&h);
    let input = load.text.clone();
    let (label, protected, positive, bins) = (
        plan.label.clone(),
        plan.protected.clone(),
        plan.positive.clone(),
        plan.bins,
    );
    run_stage(
        cache,
        "discretize",
        None,
        key,
        force,
        &format!("discretize bins={bins}"),
        obs,
        move || {
            if input.starts_with(DATASET_MAGIC) {
                return Ok(input);
            }
            let label =
                label.ok_or_else(|| PipelineError::invalid_plan("CSV source needs a label"))?;
            let table = RawTable::parse_str(&input).map_err(PipelineError::from)?;
            let mut opts = LoadOptions::new(label);
            opts.protected = protected;
            opts.positive_value = positive;
            opts.numeric_bins = bins;
            let data = table.to_dataset(&opts).map_err(PipelineError::from)?;
            Ok(data_persist::dataset_to_text(&data))
        },
    )
}

/// Computes the train/test split every consuming stage agrees on.
pub fn split_dataset(plan: &Plan, data: &Dataset) -> Result<(Dataset, Dataset), PipelineError> {
    train_test_split(data, plan.split, plan.seed).map_err(PipelineError::from)
}

/// Folds the split definition into a stage key.
pub(crate) fn write_split(h: &mut StableHasher, plan: &Plan) {
    h.write_f64(plan.split);
    h.write_u64(plan.seed);
}

/// The identify stage's cache key: a function of the discretized
/// artifact, the split, and the IBS parameters — *not* of sharding or
/// thread counts, so a sharded run stores its (byte-identical) artifact
/// under the same key as a single-process run.
pub(crate) fn identify_key(plan: &Plan, discretized_hash: &str) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_str("identify");
    h.write_str(discretized_hash);
    write_split(&mut h, plan);
    plan.ibs.stable_hash_into(&mut h);
    CacheKey::from_hasher(&h)
}

/// Identify: the IBS of the training split, shared by every branch.
///
/// `threads` fans region scoring out over scoped worker threads; it is
/// not part of the key because it cannot change the result.
#[allow(clippy::too_many_arguments)]
pub fn identify_stage(
    plan: &Plan,
    discretized: &StageOutput,
    train_set: &Dataset,
    threads: usize,
    cache: &ArtifactCache,
    force: bool,
    obs: &ObsScope,
) -> Result<StageOutput, PipelineError> {
    let key = identify_key(plan, &discretized.artifact_hash);
    let params = plan.ibs.clone();
    let inner_obs = obs.clone();
    run_stage(
        cache,
        "identify",
        None,
        key,
        force,
        &format!("identify tau={} k={}", params.tau_c, params.min_size),
        obs,
        move || {
            // the NeighborModel dispatches OrderedRadius to enumeration
            // internally, so Optimized is always the right entry point
            let algorithm = Algorithm::Optimized;
            let regions = match params.enumeration {
                remedy_core::Enumeration::Dense => {
                    let hierarchy = Hierarchy::try_build(train_set)
                        .map_err(|e| PipelineError::invalid_plan(e.to_string()))?;
                    identify_in_parallel_with(&hierarchy, &params, algorithm, threads, &inner_obs)
                }
                remedy_core::Enumeration::Pruned => {
                    let protected = train_set.schema().protected_indices();
                    remedy_core::try_identify_over_with(
                        train_set, &protected, &params, algorithm, &inner_obs,
                    )
                    .map_err(|e| PipelineError::invalid_plan(e.to_string()))?
                }
            };
            Ok(ibs_persist::regions_to_text(&regions))
        },
    )
}

/// Remedy: rewrite the training split so biased regions match their
/// neighborhood. One execution per branch with a technique.
#[allow(clippy::too_many_arguments)]
pub fn remedy_stage(
    plan: &Plan,
    branch: &str,
    params: &RemedyParams,
    discretized: &StageOutput,
    identify: &StageOutput,
    train_set: &Dataset,
    cache: &ArtifactCache,
    force: bool,
    obs: &ObsScope,
) -> Result<StageOutput, PipelineError> {
    let mut h = StableHasher::new();
    h.write_str("remedy");
    h.write_str(&discretized.artifact_hash);
    // the identify artifact is a deterministic function of the same
    // inputs, so chaining its hash documents the DAG edge at no cost in
    // spurious misses
    h.write_str(&identify.artifact_hash);
    write_split(&mut h, plan);
    params.stable_hash_into(&mut h);
    let key = CacheKey::from_hasher(&h);
    let params = params.clone();
    let inner_obs = obs.clone();
    run_stage(
        cache,
        "remedy",
        Some(branch),
        key,
        force,
        &format!("remedy {} tau={}", params.technique, params.tau_c),
        obs,
        move || {
            let outcome = remedy_core::remedy_with(train_set, &params, &inner_obs);
            Ok(data_persist::dataset_to_text(&outcome.dataset))
        },
    )
}

/// A record for a `technique=none` branch: the remedy stage is skipped
/// and the training input is the unremedied split.
pub fn skipped_remedy_record(branch: &str, train_split_hash: &str) -> StageRecord {
    StageRecord {
        stage: "remedy",
        branch: Some(branch.to_string()),
        key: "-".into(),
        artifact_hash: train_split_hash.to_string(),
        cache_hit: false,
        skipped: true,
        wall_ms: 0.0,
        counters: Vec::new(),
    }
}

/// Train: fit the branch's model family on its training input.
#[allow(clippy::too_many_arguments)]
pub fn train_stage(
    plan: &Plan,
    branch: &str,
    family: ModelFamily,
    train_input: &str,
    train_input_hash: &str,
    cache: &ArtifactCache,
    force: bool,
    obs: &ObsScope,
) -> Result<StageOutput, PipelineError> {
    let mut h = StableHasher::new();
    h.write_str("train");
    h.write_str(train_input_hash);
    h.write_str(family.token());
    h.write_u64(plan.seed);
    let key = CacheKey::from_hasher(&h);
    let seed = plan.seed;
    run_stage(
        cache,
        "train",
        Some(branch),
        key,
        force,
        &format!("train {} seed={seed}", family.token()),
        obs,
        move || {
            let data = data_persist::dataset_from_text(train_input)?;
            Ok(match family {
                ModelFamily::DecisionTree => model_persist::tree_to_text(&DecisionTree::fit(
                    &data,
                    &DecisionTreeParams::default(),
                )),
                ModelFamily::RandomForest => model_persist::forest_to_text(&RandomForest::fit(
                    &data,
                    &RandomForestParams::default(),
                    seed,
                )),
                ModelFamily::LogisticRegression => model_persist::logistic_to_text(
                    &LogisticRegression::fit(&data, &LogisticRegressionParams::default()),
                ),
                ModelFamily::NaiveBayes => {
                    model_persist::naive_bayes_to_text(&NaiveBayes::fit(&data))
                }
            })
        },
    )
}

/// Audit: metrics of the branch's model on the held-out test split.
#[allow(clippy::too_many_arguments)]
pub fn audit_stage(
    plan: &Plan,
    branch: &str,
    model: &StageOutput,
    discretized: &StageOutput,
    test_set: &Dataset,
    cache: &ArtifactCache,
    force: bool,
    obs: &ObsScope,
) -> Result<StageOutput, PipelineError> {
    let mut h = StableHasher::new();
    h.write_str("audit");
    h.write_str(&model.artifact_hash);
    h.write_str(&discretized.artifact_hash);
    write_split(&mut h, plan);
    h.write_str(plan.stat.name());
    h.write_f64(plan.tau_d);
    h.write_f64(plan.min_support);
    let key = CacheKey::from_hasher(&h);
    let model_text = model.text.clone();
    let (stat, tau_d, min_support) = (plan.stat, plan.tau_d, plan.min_support);
    run_stage(
        cache,
        "audit",
        Some(branch),
        key,
        force,
        &format!("audit {} tau_d={tau_d}", stat.name()),
        obs,
        move || {
            let model = model_persist::from_text(&model_text)
                .map_err(|e| PipelineError::corrupt(format!("cannot load model artifact: {e}")))?;
            let predictions = model.predict(test_set);
            let acc = accuracy(&predictions, test_set.labels());
            let fi = fairness_index(
                test_set,
                &predictions,
                stat,
                &FairnessIndexParams {
                    min_support,
                    alpha: 0.05,
                },
            );
            let explorer = Explorer {
                min_support,
                ..Explorer::default()
            };
            let unfair = explorer.unfair_subgroups(test_set, &predictions, stat, tau_d);
            Ok(MetricsSummary {
                statistic: stat,
                accuracy: acc,
                fairness_index: fi,
                unfair_subgroups: unfair.len() as u64,
                test_rows: test_set.len() as u64,
            }
            .to_text())
        },
    )
}
