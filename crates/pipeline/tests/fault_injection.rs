//! Deterministic fault-injection tests (compiled only with the
//! `failpoints` feature): transient cache I/O errors are retried to
//! success, a panicking stage is contained to its branch with siblings
//! finishing green, and a killed run resumes from the cache with
//! byte-identical metrics.

#![cfg(feature = "failpoints")]

use remedy_obs::Recorder;
use remedy_pipeline::failpoint::{self, Action};
use remedy_pipeline::{
    run_with, ErrorKind, PipelineOptions, Plan, RetryPolicy, RunManifest, RunStatus,
};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

const PLAN: &str = "\
dataset compas
rows 600
seed 9
split 0.7
tau 0.1
min-size 30
branch base technique=none model=dt
branch ps technique=ps model=dt
";

/// The failpoint registry is process-global, so tests that arm faults
/// must not run concurrently: each takes this lock and starts from a
/// disarmed registry.
fn arm_faults() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    failpoint::clear();
    guard
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remedy_fault_injection_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(dir: &std::path::Path) -> PipelineOptions {
    PipelineOptions {
        cache_dir: dir.join("cache"),
        threads: 1,
        ..PipelineOptions::default()
    }
}

/// Two injected transient store failures with three retries budgeted:
/// the run succeeds, and the retry counters record the recoveries.
#[test]
fn transient_store_errors_are_retried_to_success() {
    let _guard = arm_faults();
    let dir = fresh_dir("retry");
    let plan = Plan::parse(PLAN).unwrap();
    let mut options = opts(&dir);
    options.retry = RetryPolicy::new(3, 1, plan.seed);

    failpoint::set("stage.store", Action::Err, 2);
    let recorder = Recorder::enabled();
    let manifest = run_with(&plan, &options, &recorder).unwrap();
    failpoint::clear();

    assert_eq!(manifest.status, RunStatus::Ok);
    assert_eq!(manifest.branches.len(), 2);
    assert!(manifest.failures.is_empty());
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("cache", "retry.attempts"), Some(2));
    assert_eq!(snap.counter("cache", "retry.exhausted"), None);
}

/// With no retry budget, the same transient fault aborts the shared
/// prefix — and the error keeps its transient kind so callers can tell
/// a flaky disk from a broken plan.
#[test]
fn transient_store_error_without_retries_fails_the_run() {
    let _guard = arm_faults();
    let dir = fresh_dir("no_retry");
    let plan = Plan::parse(PLAN).unwrap();

    failpoint::set("stage.store.load", Action::Err, 1);
    let err = run_with(&plan, &opts(&dir), &Recorder::disabled()).unwrap_err();
    failpoint::clear();

    assert_eq!(err.kind(), ErrorKind::Transient);
    assert_eq!(err.stage(), Some("load"));
    assert!(err.to_string().contains("injected transient fault"));
}

/// A panic inside one branch's remedy stage yields a `partial` manifest:
/// the sibling branch finishes green, the victim is reported under
/// `failures` with a `stage-panic` kind, and the flushed manifest on
/// disk says the same thing.
#[test]
fn panicking_branch_yields_partial_manifest_with_green_siblings() {
    let _guard = arm_faults();
    let dir = fresh_dir("panic");
    let plan = Plan::parse(PLAN).unwrap();
    let manifest_path = dir.join("run.json");
    let mut options = opts(&dir);
    options.manifest_out = Some(manifest_path.clone());

    // only the ps branch executes a remedy stage (technique=none skips
    // it), so the victim is deterministic even across thread schedules
    failpoint::set("stage.run.remedy", Action::Panic, 1);
    let manifest = run_with(&plan, &options, &Recorder::disabled()).unwrap();
    failpoint::clear();

    assert_eq!(manifest.status, RunStatus::Partial);
    assert_eq!(manifest.branches.len(), 1);
    assert_eq!(manifest.branches[0].name, "base");
    assert_eq!(manifest.failures.len(), 1);
    let failure = &manifest.failures[0];
    assert_eq!(failure.name, "ps");
    assert_eq!(failure.kind, ErrorKind::StagePanic);
    assert!(failure.error.contains("injected panic"), "{failure:?}");
    assert!(failure.error.contains("branch ps"), "{failure:?}");

    // the on-disk snapshot agrees with the in-memory result
    let on_disk = RunManifest::from_path(&manifest_path).unwrap();
    assert_eq!(on_disk.status, RunStatus::Partial);
    assert_eq!(on_disk.branches, manifest.branches);
    assert_eq!(on_disk.failures, manifest.failures);
}

/// The kill-safe loop: a run dies mid-way (one branch panics after the
/// survivors were cached), then `resume` replays the completed stages
/// from the cache and re-executes only the unfinished branch — ending
/// with byte-identical metrics for the branches that had finished.
#[test]
fn killed_run_resumes_from_cache_with_identical_metrics() {
    let _guard = arm_faults();
    let dir = fresh_dir("resume");
    let plan = Plan::parse(PLAN).unwrap();
    let manifest_path = dir.join("run.json");
    let mut options = opts(&dir);
    options.manifest_out = Some(manifest_path.clone());

    failpoint::set("stage.run.remedy", Action::Panic, 1);
    let first = run_with(&plan, &options, &Recorder::disabled()).unwrap();
    failpoint::clear();
    assert_eq!(first.status, RunStatus::Partial);

    // resume from the partial manifest, faults disarmed
    options.resume = Some(manifest_path.clone());
    let recorder = Recorder::enabled();
    let second = run_with(&plan, &options, &recorder).unwrap();

    assert_eq!(second.status, RunStatus::Ok);
    assert_eq!(second.branches.len(), 2);
    assert!(second.failures.is_empty());
    // the branch that completed before the "kill" replays from cache,
    // bit-for-bit
    assert_eq!(first.branch("base"), second.branch("base"));
    for stage in ["load", "discretize", "identify"] {
        assert!(
            second.stage(stage, None).unwrap().cache_hit,
            "shared stage {stage} should replay from cache on resume"
        );
    }
    for stage in ["train", "audit"] {
        assert!(second.stage(stage, Some("base")).unwrap().cache_hit);
    }
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("resume", "prior_branches"), Some(1));
    assert_eq!(snap.counter("resume", "prior_incomplete"), Some(1));

    // the final manifest on disk is the complete one
    let on_disk = RunManifest::from_path(&manifest_path).unwrap();
    assert_eq!(on_disk.status, RunStatus::Ok);
    assert_eq!(on_disk.branches, second.branches);
}
