//! Integration tests for the pipeline DAG: cache hit/miss semantics
//! across re-runs, metric parity with the equivalent hand-rolled
//! computation, determinism of artifacts, and injectivity of the
//! cache-key hashing.

use remedy_classifiers::{accuracy, DecisionTree, DecisionTreeParams, Model};
use remedy_core::{IbsParams, Neighborhood, RemedyParams, Scope, Technique};
use remedy_dataset::split::train_test_split;
use remedy_dataset::synth;
use remedy_fairness::{fairness_index, FairnessIndexParams, Statistic};
use remedy_pipeline::{run, PipelineOptions, Plan};
use std::collections::HashSet;
use std::path::PathBuf;

const PLAN: &str = "\
dataset compas
rows 1000
seed 9
split 0.7
tau 0.1
min-size 30
branch base technique=none model=dt
branch ps technique=ps model=dt
";

fn fresh_cache(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remedy_pipeline_test_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(cache: &std::path::Path) -> PipelineOptions {
    PipelineOptions {
        cache_dir: cache.to_path_buf(),
        threads: 2,
        ..PipelineOptions::default()
    }
}

/// The load-bearing acceptance test: a cold run misses everywhere, an
/// identical re-run hits everywhere, and changing only τ_c re-executes
/// exactly the stages downstream of identification.
#[test]
fn rerun_with_changed_tau_reexecutes_only_downstream() {
    let cache = fresh_cache("tau");
    let plan = Plan::parse(PLAN).unwrap();

    // cold run: every executed stage is a miss
    let first = run(&plan, &opts(&cache)).unwrap();
    for stage in &first.stages {
        assert!(!stage.cache_hit, "cold run hit cache: {stage:?}");
    }
    assert!(first.stage("remedy", Some("base")).unwrap().skipped);
    assert!(!first.stage("remedy", Some("ps")).unwrap().skipped);

    // identical re-run: every non-skipped stage is a hit, results equal
    let second = run(&plan, &opts(&cache)).unwrap();
    for stage in &second.stages {
        assert_eq!(
            stage.cache_hit, !stage.skipped,
            "warm re-run should hit: {stage:?}"
        );
    }
    assert_eq!(first.branches, second.branches);
    for (a, b) in first.stages.iter().zip(&second.stages) {
        assert_eq!(a.artifact_hash, b.artifact_hash);
        assert_eq!(a.key, b.key);
    }

    // change only tau: the shared Load/Discretize prefix replays from
    // cache, identification and the ps branch recompute; the technique=none
    // branch is untouched by tau so its train/audit stay cached
    let mut changed = plan.clone();
    changed.ibs.tau_c = 0.2;
    let third = run(&changed, &opts(&cache)).unwrap();
    assert!(third.stage("load", None).unwrap().cache_hit);
    assert!(third.stage("discretize", None).unwrap().cache_hit);
    assert!(!third.stage("identify", None).unwrap().cache_hit);
    assert!(!third.stage("remedy", Some("ps")).unwrap().cache_hit);
    assert!(!third.stage("train", Some("ps")).unwrap().cache_hit);
    assert!(!third.stage("audit", Some("ps")).unwrap().cache_hit);
    assert!(third.stage("train", Some("base")).unwrap().cache_hit);
    assert!(third.stage("audit", Some("base")).unwrap().cache_hit);
    // the unaffected branch's outcome is bit-identical
    assert_eq!(first.branch("base"), third.branch("base"));
}

/// Pipeline metrics must equal the same computation done by hand with the
/// individual building blocks (the CLI-subcommand equivalent).
#[test]
fn metrics_match_manual_computation() {
    let cache = fresh_cache("parity");
    let plan = Plan::parse(PLAN).unwrap();
    let manifest = run(&plan, &opts(&cache)).unwrap();

    // hand-rolled equivalent of the ps branch
    let data = synth::compas_n(1000, 9);
    let (train_set, test_set) = train_test_split(&data, 0.7, 9).unwrap();
    let remedied = remedy_core::remedy(
        &train_set,
        &RemedyParams::builder()
            .technique(Technique::PreferentialSampling)
            .tau_c(0.1)
            .min_size(30)
            .seed(9)
            .build()
            .unwrap(),
    )
    .dataset;
    let model = DecisionTree::fit(&remedied, &DecisionTreeParams::default());
    let predictions = model.predict(&test_set);
    let expected_acc = accuracy(&predictions, test_set.labels());
    let expected_fi = fairness_index(
        &test_set,
        &predictions,
        Statistic::Fpr,
        &FairnessIndexParams {
            min_support: 0.1,
            alpha: 0.05,
        },
    );

    let ps = manifest.branch("ps").unwrap();
    assert_eq!(ps.metrics.accuracy, expected_acc);
    assert_eq!(ps.metrics.fairness_index, expected_fi);
    assert_eq!(ps.metrics.test_rows as usize, test_set.len());

    // and the baseline branch trains on the unremedied split
    let base_model = DecisionTree::fit(&train_set, &DecisionTreeParams::default());
    let base_preds = base_model.predict(&test_set);
    assert_eq!(
        manifest.branch("base").unwrap().metrics.accuracy,
        accuracy(&base_preds, test_set.labels())
    );
}

/// Cache parity with the pre-index scan implementation: the remedy
/// artifact the pipeline persists (computed through the incremental
/// `RegionIndex` engine) must be byte-identical to `remedy_over_scan` on
/// the same split — and the cache key is unchanged — so `.remedy-cache`
/// entries written by the per-node scan code path replay under the
/// incremental engine, and vice versa.
#[test]
fn remedy_cache_artifact_matches_scan_baseline() {
    let cache = fresh_cache("scan_parity");
    let plan = Plan::parse(PLAN).unwrap();
    let manifest = run(&plan, &opts(&cache)).unwrap();

    let rec = manifest.stage("remedy", Some("ps")).unwrap();
    assert!(!rec.skipped);
    let artifact =
        std::fs::read_to_string(cache.join(format!("remedy-{}", rec.key)).join("artifact"))
            .unwrap();

    // the scan baseline's artifact for the same split and params
    let data = synth::compas_n(1000, 9);
    let (train_set, _) = train_test_split(&data, 0.7, 9).unwrap();
    let protected = train_set.schema().protected_indices();
    let scanned = remedy_core::remedy_over_scan(
        &train_set,
        &protected,
        &RemedyParams::builder()
            .technique(Technique::PreferentialSampling)
            .tau_c(0.1)
            .min_size(30)
            .seed(9)
            .build()
            .unwrap(),
    );
    assert_eq!(
        artifact,
        remedy_dataset::persist::dataset_to_text(&scanned.dataset),
        "incremental remedy artifact diverges from the scan baseline"
    );

    // a warm re-run replays that artifact from cache
    let second = run(&plan, &opts(&cache)).unwrap();
    let warm = second.stage("remedy", Some("ps")).unwrap();
    assert!(warm.cache_hit);
    assert_eq!(warm.key, rec.key);
    assert_eq!(warm.artifact_hash, rec.artifact_hash);
}

/// Forced recomputation into a second cache produces byte-identical
/// artifacts: the whole DAG is deterministic from the plan alone.
#[test]
fn forced_reruns_are_byte_identical() {
    let plan = Plan::parse(PLAN).unwrap();
    let cache_a = fresh_cache("det_a");
    let cache_b = fresh_cache("det_b");
    let a = run(&plan, &opts(&cache_a)).unwrap();
    let mut forced = opts(&cache_b);
    forced.force = true;
    forced.threads = 1; // thread count must not leak into artifacts
    let b = run(&plan, &forced).unwrap();
    assert_eq!(a.stages.len(), b.stages.len());
    for (x, y) in a.stages.iter().zip(&b.stages) {
        assert_eq!(x.stage, y.stage);
        assert_eq!(x.artifact_hash, y.artifact_hash, "stage {}", x.stage);
    }
    assert_eq!(a.branches, b.branches);
}

/// The Fig. 8 ablation shape: one plan fans out a baseline, a Unit-T
/// remedy, and an OrderedRadius-T remedy branch. The ordered branch
/// must get its own remedy cache key (different artifact allowed), and a
/// warm re-run must replay every stage — including the ordered remedy —
/// from cache.
#[test]
fn unit_vs_ordered_radius_ablation_fans_out_and_replays() {
    let cache = fresh_cache("ablation");
    let plan = Plan::parse(
        "dataset compas\n\
         rows 1000\n\
         seed 9\n\
         split 0.7\n\
         tau 0.1\n\
         min-size 30\n\
         branch base technique=none model=dt\n\
         branch unit-ps technique=ps model=dt\n\
         branch ordered-ps technique=ps model=dt neighborhood=1.5\n",
    )
    .unwrap();

    let first = run(&plan, &opts(&cache)).unwrap();
    for stage in &first.stages {
        assert!(!stage.cache_hit, "cold run hit cache: {stage:?}");
    }
    let unit = first.stage("remedy", Some("unit-ps")).unwrap();
    let ordered = first.stage("remedy", Some("ordered-ps")).unwrap();
    assert!(!unit.skipped && !ordered.skipped);
    assert_ne!(
        unit.key, ordered.key,
        "branch neighborhood override must change the remedy cache key"
    );
    assert!(first.branch("base").is_some());
    assert!(first.branch("unit-ps").is_some());
    assert!(first.branch("ordered-ps").is_some());

    // warm re-run: everything (including the ordered remedy) replays
    let second = run(&plan, &opts(&cache)).unwrap();
    for stage in &second.stages {
        assert_eq!(
            stage.cache_hit, !stage.skipped,
            "warm ablation re-run should hit: {stage:?}"
        );
    }
    assert_eq!(first.branches, second.branches);
}

/// Converting a plan's file source from exact text to binary columnar
/// must not invalidate a single cache entry: the binary decoder
/// reconstructs the canonical text byte-for-byte (checked against the
/// digest pinned in the columnar header), so the load key — and every
/// key downstream of it — is unchanged and a warm re-run replays
/// everywhere.
#[test]
fn converting_the_source_to_binary_replays_the_text_cache() {
    let cache = fresh_cache("convert");
    let dir = std::env::temp_dir().join("remedy_pipeline_convert_src");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("data.remedy");
    let data = synth::compas_n(600, 9);
    remedy_dataset::persist::save_dataset(&data, &source).unwrap();
    let plan = Plan::parse(&format!(
        "dataset {}\nseed 9\nsplit 0.7\ntau 0.1\nmin-size 30\n\
         label recid\nprotected age,race,sex\n\
         branch ps technique=ps model=dt\n",
        source.display()
    ))
    .unwrap();

    let cold = run(&plan, &opts(&cache)).unwrap();
    for stage in &cold.stages {
        assert!(!stage.cache_hit, "cold run hit cache: {stage:?}");
    }

    // convert the source file in place: text → binary columnar
    remedy_dataset::store::save(&data, &source, remedy_dataset::Format::Binary).unwrap();
    assert_eq!(
        remedy_dataset::store::sniff(&std::fs::read(&source).unwrap()),
        Some(remedy_dataset::Format::Binary)
    );

    let warm = run(&plan, &opts(&cache)).unwrap();
    for stage in &warm.stages {
        assert!(
            stage.cache_hit || stage.skipped,
            "binary source missed a text-populated cache entry: {stage:?}"
        );
    }
    assert_eq!(cold.branches, warm.branches);
    for (a, b) in cold.stages.iter().zip(&warm.stages) {
        assert_eq!(a.key, b.key, "stage {} key drifted", a.stage);
        assert_eq!(a.artifact_hash, b.artifact_hash);
    }

    // and pinning `format binary` in the plan still replays (the format
    // key itself is not hashed; the reconstructed artifact is)
    let mut pinned = plan.clone();
    pinned.format = remedy_pipeline::SourceFormat::Binary;
    let third = run(&pinned, &opts(&cache)).unwrap();
    for stage in &third.stages {
        assert!(stage.cache_hit || stage.skipped, "{stage:?}");
    }
}

/// The manifest serializes and reports what ran.
#[test]
fn manifest_json_written() {
    let cache = fresh_cache("json");
    let plan = Plan::parse(PLAN).unwrap();
    let manifest = run(&plan, &opts(&cache)).unwrap();
    let path = cache.join("run.json");
    manifest.write_path(&path).unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"cache_hit\": false"));
    assert!(json.contains("\"branch\": \"ps\""));
    assert!(json.contains("\"fairness_index\": "));
}

/// Property: cache-key hashing is injective over a grid of distinct
/// `IbsParams` (and stays injective when embedded in `RemedyParams`).
/// A collision would silently serve one parameterization's artifacts for
/// another's, so this is the cache's core soundness property.
#[test]
fn stable_hash_injective_over_param_grid() {
    let taus = [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 1.0];
    let sizes = [1u64, 2, 10, 30, 50, 100];
    let neighborhoods = [
        Neighborhood::Unit,
        Neighborhood::Full,
        Neighborhood::OrderedRadius(0.5),
        Neighborhood::OrderedRadius(1.0),
        Neighborhood::OrderedRadius(2.0),
    ];
    let scopes = [Scope::Lattice, Scope::Leaf, Scope::Top];
    let mut seen = HashSet::new();
    let mut count = 0usize;
    for &tau_c in &taus {
        for &min_size in &sizes {
            for &neighborhood in &neighborhoods {
                for &scope in &scopes {
                    let params = IbsParams::builder()
                        .tau_c(tau_c)
                        .min_size(min_size)
                        .neighborhood(neighborhood)
                        .scope(scope)
                        .build()
                        .unwrap();
                    assert!(seen.insert(params.stable_hash()), "collision at {params:?}");
                    count += 1;
                }
            }
        }
    }
    assert_eq!(seen.len(), count);

    // RemedyParams add technique and seed on top; every combination over a
    // smaller grid must still be distinct, and distinct from plain
    // IbsParams digests (domain separation via the leading tag)
    for &tau_c in &taus[..3] {
        for technique in Technique::ALL {
            for seed in [0u64, 1, 0x5EED] {
                let params = RemedyParams::builder()
                    .technique(technique)
                    .tau_c(tau_c)
                    .seed(seed)
                    .build()
                    .unwrap();
                assert!(seen.insert(params.stable_hash()), "collision at {params:?}");
            }
        }
    }

    // equal params hash equally (the other half of "stands in for the
    // parameters themselves")
    assert_eq!(
        IbsParams::default().stable_hash(),
        IbsParams::default().stable_hash()
    );
}
