//! Integration tests for the observability layer end to end: a traced
//! pipeline run streams well-formed JSONL span/counter/histogram events,
//! the manifest carries per-stage counters, and recording changes nothing
//! about the computed artifacts.

use remedy_obs::Recorder;
use remedy_pipeline::{run, run_with, PipelineOptions, Plan};
use std::path::PathBuf;

const PLAN: &str = "\
dataset compas
rows 1000
seed 9
split 0.7
tau 0.1
min-size 30
branch base technique=none model=dt
branch ps technique=ps model=dt
";

fn fresh_cache(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remedy_pipeline_obs_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(cache: &std::path::Path) -> PipelineOptions {
    PipelineOptions {
        cache_dir: cache.to_path_buf(),
        threads: 2,
        ..PipelineOptions::default()
    }
}

/// Extracts an unsigned integer field from a JSONL event line.
fn field_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {line}"));
    line[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn counter(record: &remedy_pipeline::StageRecord, name: &str) -> Option<u64> {
    record
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
}

/// The acceptance path: `trace` set on a cold run emits a JSONL trace
/// whose lines are all JSON objects, with the expected span tree and
/// per-scope counter summaries, and the manifest's stage records carry
/// the counters recorded under their scopes.
#[test]
fn traced_run_emits_jsonl_and_manifest_counters() {
    let cache = fresh_cache("trace");
    let trace_path = std::env::temp_dir().join("remedy_pipeline_obs_trace.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    let plan = Plan::parse(PLAN).unwrap();
    let mut options = opts(&cache);
    options.trace = Some(trace_path.clone());
    let manifest = run(&plan, &options).unwrap();

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 10, "trace too short: {} lines", lines.len());
    for line in &lines {
        assert!(
            line.starts_with("{\"t\":\"") && line.ends_with('}'),
            "not a JSONL event: {line}"
        );
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "unbalanced braces: {line}"
        );
    }
    assert!(lines[0].contains("\"t\":\"trace\""), "missing header");

    // the span tree: one root `pipeline/run` span, stage spans under it
    let root = lines
        .iter()
        .find(|l| l.contains("\"t\":\"span\"") && l.contains("\"scope\":\"pipeline\""))
        .expect("no pipeline run span");
    assert!(root.contains("\"parent\":null"));
    let run_id = field_u64(root, "id");
    for scope in ["load", "discretize", "identify", "ps/remedy"] {
        let span = lines
            .iter()
            .find(|l| l.contains("\"t\":\"span\"") && l.contains(&format!("\"scope\":\"{scope}\"")))
            .unwrap_or_else(|| panic!("no span for scope {scope}"));
        assert_eq!(field_u64(span, "parent"), run_id, "span not under run");
    }

    // counter summaries: the shared cache and the identify scan
    let cache_counters = lines
        .iter()
        .find(|l| l.contains("\"t\":\"counters\"") && l.contains("\"scope\":\"cache\""))
        .expect("no cache counters event");
    assert!(cache_counters.contains("\"misses\":"));
    let identify_counters = lines
        .iter()
        .find(|l| l.contains("\"t\":\"counters\"") && l.contains("\"scope\":\"identify\""))
        .expect("no identify counters event");
    assert!(identify_counters.contains("\"regions_scanned\":"));
    assert!(lines.iter().any(|l| l.contains("\"t\":\"hist\"")));

    // manifest records carry the same counters, keyed per stage scope
    let identify = manifest.stage("identify", None).unwrap();
    assert_eq!(counter(identify, "cache_misses"), Some(1));
    assert!(counter(identify, "regions_scanned").unwrap() > 0);
    assert!(counter(identify, "neighbor_lookups").unwrap() > 0);
    let remedy = manifest.stage("remedy", Some("ps")).unwrap();
    assert_eq!(counter(remedy, "cache_misses"), Some(1));
    // and they serialize into run.json
    let json = manifest.to_json();
    assert!(json.contains("\"regions_scanned\""));
    assert!(json.contains("\"cache_misses\": 1"));
}

/// Recording must be an observer, never a participant: a traced run and
/// an untraced run of the same plan produce identical artifacts and
/// outcomes, and untraced records carry no counters.
#[test]
fn recording_does_not_change_results() {
    let plan = Plan::parse(PLAN).unwrap();
    let cache_plain = fresh_cache("plain");
    let plain = run(&plan, &opts(&cache_plain)).unwrap();

    let cache_traced = fresh_cache("traced");
    let recorder = Recorder::enabled();
    let traced = run_with(&plan, &opts(&cache_traced), &recorder).unwrap();

    assert_eq!(plain.branches, traced.branches);
    assert_eq!(plain.stages.len(), traced.stages.len());
    for (a, b) in plain.stages.iter().zip(&traced.stages) {
        assert_eq!(a.artifact_hash, b.artifact_hash, "stage {}", a.stage);
        assert!(a.counters.is_empty(), "untraced stage has counters: {a:?}");
    }

    // the in-memory recorder aggregated the full run, per scope
    let snap = recorder.snapshot();
    assert!(snap.counter("cache", "misses").unwrap() > 0);
    assert!(snap.counter("identify", "regions_scanned").unwrap() > 0);
    assert_eq!(snap.counter("load", "cache_misses"), Some(1));
    assert_eq!(snap.counter("ps/remedy", "cache_misses"), Some(1));
    // branch-qualified scopes keep concurrent branches separate: the
    // technique=none branch trains too, under its own label
    assert_eq!(snap.counter("base/train", "cache_misses"), Some(1));
    assert_eq!(snap.counter("ps/train", "cache_misses"), Some(1));
}

/// Warm re-runs hit the cache and the hits are visible both in the cache
/// scope and in each stage's own counters.
#[test]
fn warm_rerun_counts_hits() {
    let plan = Plan::parse(PLAN).unwrap();
    let cache = fresh_cache("warm");
    run(&plan, &opts(&cache)).unwrap();

    let recorder = Recorder::enabled();
    let manifest = run_with(&plan, &opts(&cache), &recorder).unwrap();
    for stage in &manifest.stages {
        if !stage.skipped {
            assert!(stage.cache_hit);
        }
    }
    let snap = recorder.snapshot();
    assert!(snap.counter("cache", "hits").unwrap() >= 8);
    assert_eq!(snap.counter("cache", "misses"), None);
    assert_eq!(snap.counter("identify", "cache_hits"), Some(1));
    // a cache hit skips the scan entirely, so no scan counters exist
    assert_eq!(snap.counter("identify", "regions_scanned"), None);
}
