//! Always-on robustness tests (no fault-injection feature needed):
//! corrupted cache artifacts are quarantined and transparently
//! recomputed, damaged resume manifests surface structured errors
//! instead of panics, and resume replays a finished run from the cache.

use remedy_obs::Recorder;
use remedy_pipeline::{run, run_with, ErrorKind, PipelineOptions, Plan, RunManifest, RunStatus};
use std::path::PathBuf;

const PLAN: &str = "\
dataset compas
rows 600
seed 9
split 0.7
tau 0.1
min-size 30
branch base technique=none model=dt
branch ps technique=ps model=dt
";

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remedy_robustness_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(dir: &std::path::Path) -> PipelineOptions {
    PipelineOptions {
        cache_dir: dir.join("cache"),
        threads: 2,
        ..PipelineOptions::default()
    }
}

/// Flips one byte in a cached stage artifact.
fn corrupt_one_artifact(cache_dir: &std::path::Path, stage_prefix: &str) -> PathBuf {
    let entry = std::fs::read_dir(cache_dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| {
            e.file_name()
                .to_string_lossy()
                .starts_with(&format!("{stage_prefix}-"))
        })
        .unwrap_or_else(|| panic!("no cached {stage_prefix} entry"));
    let artifact = entry.path().join("artifact");
    let mut bytes = std::fs::read(&artifact).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&artifact, bytes).unwrap();
    artifact
}

/// A bit-flipped cache entry never reaches a consumer: the replay
/// detects the hash mismatch, quarantines the entry, recomputes the
/// stage, and the run's results are unchanged.
#[test]
fn corrupt_cached_artifact_is_quarantined_and_recomputed() {
    let dir = fresh_dir("bitflip");
    let plan = Plan::parse(PLAN).unwrap();
    let options = opts(&dir);
    let first = run(&plan, &options).unwrap();
    assert_eq!(first.status, RunStatus::Ok);

    corrupt_one_artifact(&options.cache_dir, "identify");

    let recorder = Recorder::enabled();
    let second = run_with(&plan, &options, &recorder).unwrap();
    assert_eq!(second.status, RunStatus::Ok);
    assert_eq!(
        first.branches, second.branches,
        "corruption changed results"
    );
    assert!(
        !second.stage("identify", None).unwrap().cache_hit,
        "corrupt identify entry must be recomputed, not replayed"
    );
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("cache", "corrupt.detected"), Some(1));
    assert_eq!(snap.counter("cache", "corrupt.quarantined"), Some(1));

    // the damaged entry sits in quarantine/ for post-mortems
    let quarantine = options.cache_dir.join("quarantine");
    assert!(quarantine.is_dir());
    assert_eq!(std::fs::read_dir(&quarantine).unwrap().count(), 1);

    // the recomputed entry was re-stored: a third run replays everything
    let third = run(&plan, &options).unwrap();
    assert!(third.stage("identify", None).unwrap().cache_hit);
}

/// Resuming from a file that is not a manifest — garbage, truncation,
/// or plain missing — is a structured, single-line error, never a panic.
#[test]
fn damaged_resume_manifests_error_instead_of_panicking() {
    let dir = fresh_dir("damaged_resume");
    let plan = Plan::parse(PLAN).unwrap();

    // a complete run gives us a real manifest to damage
    let manifest_path = dir.join("run.json");
    let mut options = opts(&dir);
    options.manifest_out = Some(manifest_path.clone());
    run(&plan, &options).unwrap();
    let full = std::fs::read_to_string(&manifest_path).unwrap();

    let mut resume_opts = opts(&dir);
    for (name, content) in [
        ("garbage", "not json at all".to_string()),
        ("truncated", full[..full.len() / 2].to_string()),
        ("wrong_shape", "[1, 2, 3]".to_string()),
        ("empty", String::new()),
    ] {
        let damaged = dir.join(format!("{name}.json"));
        std::fs::write(&damaged, &content).unwrap();
        resume_opts.resume = Some(damaged.clone());
        let err = run(&plan, &resume_opts).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::CorruptArtifact, "{name}: {err}");
        let message = err.to_string();
        assert!(!message.contains('\n'), "{name}: multi-line error");
        assert!(
            message.contains(damaged.to_str().unwrap()),
            "{name}: error must name the file: {message}"
        );
    }

    // a missing manifest is fatal (nothing to salvage), also structured
    resume_opts.resume = Some(dir.join("does-not-exist.json"));
    let err = run(&plan, &resume_opts).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Fatal);
}

/// A resume manifest from a different experiment (other dataset or
/// seed) is rejected up front as an invalid plan, before any work runs.
#[test]
fn resume_rejects_mismatched_dataset_or_seed() {
    let dir = fresh_dir("mismatch");
    let plan = Plan::parse(PLAN).unwrap();
    let manifest_path = dir.join("run.json");
    let mut options = opts(&dir);
    options.manifest_out = Some(manifest_path.clone());
    run(&plan, &options).unwrap();

    let mut other = plan.clone();
    other.seed = 10;
    options.resume = Some(manifest_path);
    let err = run(&other, &options).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidPlan);
    assert!(err.to_string().contains("seed 9"), "{err}");
    assert!(err.to_string().contains("seed 10"), "{err}");
}

/// The happy resume path: a finished run resumes into a pure replay —
/// every stage hits the cache and the metrics are byte-identical.
#[test]
fn resume_of_a_finished_run_is_a_pure_replay() {
    let dir = fresh_dir("replay");
    let plan = Plan::parse(PLAN).unwrap();
    let manifest_path = dir.join("run.json");
    let mut options = opts(&dir);
    options.manifest_out = Some(manifest_path.clone());
    let first = run(&plan, &options).unwrap();

    options.resume = Some(manifest_path.clone());
    let recorder = Recorder::enabled();
    let second = run_with(&plan, &options, &recorder).unwrap();
    assert_eq!(second.status, RunStatus::Ok);
    for stage in &second.stages {
        assert_eq!(
            stage.cache_hit, !stage.skipped,
            "resume recomputed {stage:?}"
        );
    }
    assert_eq!(first.branches, second.branches);
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("resume", "prior_branches"), Some(2));
    assert_eq!(snap.counter("resume", "prior_stages"), Some(9));

    // the manifest on disk is the resumed run's, atomic write left no
    // temp files behind
    let on_disk = RunManifest::from_path(&manifest_path).unwrap();
    assert_eq!(on_disk.branches, second.branches);
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
}
