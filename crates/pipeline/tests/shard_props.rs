//! Seeded property suite for sharded counting: merging per-shard
//! accumulators is exact (≡ one whole-dataset scan) for every dataset ×
//! shard-count combination, merge is associative and commutative, and
//! end-to-end sharded runs — dense and pruned, with and without a
//! worker killed mid-run — produce byte-identical identify artifacts
//! under the same cache key as a single-process run.

use remedy_core::persist::counts_to_text;
use remedy_core::ShardCounts;
use remedy_dataset::{store, synth, Dataset};
use remedy_obs::Recorder;
use remedy_pipeline::{run_with, PipelineOptions, Plan, RunStatus, WorkerMode};
use std::path::{Path, PathBuf};

/// Deterministic seed stream so every property case is reproducible
/// from the printed (dataset, shards, seed) triple.
fn seeds(n: usize) -> Vec<u64> {
    let mut s = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        })
        .collect()
}

fn corpora(seed: u64) -> Vec<(&'static str, Dataset)> {
    vec![
        ("compas", synth::compas_n(900, seed)),
        ("adult", synth::adult_n(1200, seed)),
        ("law", synth::law_school_n(1000, seed)),
    ]
}

/// Canonical text form of an accumulator: leaves sorted ascending, so
/// equality of text is equality of counts.
fn text(counts: &ShardCounts) -> String {
    counts_to_text(counts)
}

fn scan_shards(parts: &[Dataset]) -> Vec<ShardCounts> {
    parts
        .iter()
        .map(|p| ShardCounts::scan(p, 1).unwrap())
        .collect()
}

fn merge_all(mut counts: Vec<ShardCounts>) -> ShardCounts {
    let mut acc = counts.remove(0);
    for c in &counts {
        acc.merge(c).unwrap();
    }
    acc
}

#[test]
fn merged_shard_counts_equal_whole_dataset_counts() {
    for seed in seeds(2) {
        for (name, data) in corpora(seed) {
            let whole = text(&ShardCounts::scan(&data, 1).unwrap());
            for shards in 1..=8usize {
                let parts = store::partition_stratified(&data, shards);
                let merged = merge_all(scan_shards(&parts));
                assert_eq!(
                    text(&merged),
                    whole,
                    "merged counts diverge: dataset={name} shards={shards} seed={seed}"
                );
            }
        }
    }
}

#[test]
fn merge_is_associative_and_commutative() {
    for seed in seeds(2) {
        let data = synth::compas_n(900, seed);
        let parts = store::partition_stratified(&data, 3);
        let [a, b, c]: [ShardCounts; 3] = scan_shards(&parts).try_into().ok().unwrap();

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut right = a.clone();
        right.merge(&bc).unwrap();
        assert_eq!(
            text(&left),
            text(&right),
            "merge not associative, seed={seed}"
        );

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(text(&ab), text(&ba), "merge not commutative, seed={seed}");
    }
}

// ---- end-to-end byte identity -------------------------------------------

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remedy_shard_props_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn plan_for(dataset: &str, enumeration: &str) -> Plan {
    Plan::parse(&format!(
        "dataset {dataset}\nrows 800\nseed 11\ntau 0.1\nmin-size 25\n\
         enumeration {enumeration}\nbranch base technique=none model=dt\n"
    ))
    .unwrap()
}

fn opts(cache: &Path, shards: usize) -> PipelineOptions {
    PipelineOptions {
        cache_dir: cache.to_path_buf(),
        threads: 1,
        shards,
        worker: WorkerMode::InProcess,
        ..PipelineOptions::default()
    }
}

/// The single `identify-<key>` cache entry as `(dir-name, artifact)`.
fn identify_entry(cache: &Path) -> (String, Vec<u8>) {
    let mut names: Vec<String> = std::fs::read_dir(cache)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with("identify-"))
        .collect();
    assert_eq!(names.len(), 1, "want one identify entry, got {names:?}");
    let name = names.remove(0);
    let artifact = std::fs::read(cache.join(&name).join("artifact")).unwrap();
    (name, artifact)
}

#[test]
fn sharded_runs_are_byte_identical_to_single_process() {
    for enumeration in ["dense", "pruned"] {
        for dataset in ["compas", "adult"] {
            let dir = fresh_dir(&format!("parity_{enumeration}_{dataset}"));
            let plan = plan_for(dataset, enumeration);

            let base_cache = dir.join("cache1");
            let base = run_with(&plan, &opts(&base_cache, 1), &Recorder::disabled()).unwrap();
            assert_eq!(base.status, RunStatus::Ok);
            let (base_key, base_artifact) = identify_entry(&base_cache);

            for shards in [2usize, 4] {
                let cache = dir.join(format!("cache{shards}"));
                let sharded =
                    run_with(&plan, &opts(&cache, shards), &Recorder::disabled()).unwrap();
                assert_eq!(sharded.status, RunStatus::Ok);
                let (key, artifact) = identify_entry(&cache);
                assert_eq!(
                    key, base_key,
                    "identify key must ignore sharding: {enumeration}/{dataset}/{shards}"
                );
                assert_eq!(
                    artifact, base_artifact,
                    "identify artifact differs: {enumeration}/{dataset}/{shards}"
                );
                // the manifest carries one shard + one count record per shard
                let cuts = sharded.stages.iter().filter(|s| s.stage == "shard").count();
                let counts = sharded.stages.iter().filter(|s| s.stage == "count").count();
                assert_eq!((cuts, counts), (shards, shards));
            }
        }
    }
}

// ---- fault injection: killed worker, then resume ------------------------

#[cfg(feature = "failpoints")]
mod faults {
    use super::*;
    use remedy_pipeline::failpoint::{self, Action};
    use remedy_pipeline::{ErrorKind, RetryPolicy, RunManifest};
    use std::sync::{Mutex, MutexGuard};

    /// The failpoint registry is process-global: serialize armed tests.
    fn arm_faults() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        failpoint::clear();
        guard
    }

    /// One worker dies mid-run; the retry policy re-runs just that shard
    /// and the output is still byte-identical to the unsharded run.
    #[test]
    fn killed_worker_is_retried_to_a_byte_identical_result() {
        let _guard = arm_faults();
        let dir = fresh_dir("kill_retry");
        let plan = plan_for("compas", "dense");

        let base_cache = dir.join("base");
        run_with(&plan, &opts(&base_cache, 1), &Recorder::disabled()).unwrap();
        let (base_key, base_artifact) = identify_entry(&base_cache);

        let cache = dir.join("sharded");
        let mut options = opts(&cache, 4);
        options.retry = RetryPolicy::new(2, 1, plan.seed);
        failpoint::set("shard.worker.s1", Action::Err, 1);
        let recorder = Recorder::enabled();
        let manifest = run_with(&plan, &options, &recorder).unwrap();
        failpoint::clear();

        assert_eq!(manifest.status, RunStatus::Ok);
        let (key, artifact) = identify_entry(&cache);
        assert_eq!((key, artifact), (base_key, base_artifact));
        // exactly one retry, recorded under the killed shard's scope
        let snap = recorder.snapshot();
        let attempts: u64 = snap
            .counters
            .iter()
            .filter(|(_, name, _)| name == "retry.attempts")
            .map(|&(_, _, v)| v)
            .sum();
        assert_eq!(attempts, 1, "counters: {:?}", snap.counters);
    }

    /// Without a retry budget the killed worker fails the run — but the
    /// completed shards are in the cache and the flushed manifest is
    /// resumable, so a `--resume` rerun recovers byte-identical output.
    #[test]
    fn killed_run_resumes_to_a_byte_identical_result() {
        let _guard = arm_faults();
        let dir = fresh_dir("kill_resume");
        let plan = plan_for("compas", "dense");

        let base_cache = dir.join("base");
        run_with(&plan, &opts(&base_cache, 1), &Recorder::disabled()).unwrap();
        let (base_key, base_artifact) = identify_entry(&base_cache);

        let cache = dir.join("sharded");
        let manifest_path = dir.join("run.json");
        let mut options = opts(&cache, 4);
        options.manifest_out = Some(manifest_path.clone());
        failpoint::set("shard.worker.s2", Action::Err, 1);
        let err = run_with(&plan, &options, &Recorder::disabled()).unwrap_err();
        failpoint::clear();
        assert_eq!(err.kind(), ErrorKind::Transient);

        // the incrementally-flushed manifest marks the run as killed
        let flushed = RunManifest::from_path(&manifest_path).unwrap();
        assert_eq!(flushed.status, RunStatus::Running);

        let mut resumed_options = opts(&cache, 4);
        resumed_options.manifest_out = Some(manifest_path.clone());
        resumed_options.resume = Some(manifest_path);
        let resumed = run_with(&plan, &resumed_options, &Recorder::disabled()).unwrap();
        assert_eq!(resumed.status, RunStatus::Ok);
        let (key, artifact) = identify_entry(&cache);
        assert_eq!((key, artifact), (base_key, base_artifact));
    }
}
