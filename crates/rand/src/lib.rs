//! Vendored, dependency-free stand-in for the subset of the `rand` crate
//! this workspace uses.
//!
//! The build environment has no registry access, so the real `rand` cannot
//! be fetched. Every consumer in this workspace only needs seeded,
//! reproducible generation — `StdRng::seed_from_u64`, `gen::<f64>()`, and
//! `gen_range` over integer/float ranges — so this crate provides exactly
//! that API on top of xoshiro256++ (seeded via SplitMix64). Sequences
//! differ from upstream `rand` (which uses ChaCha12 for `StdRng`), but all
//! workspace code treats the RNG as an opaque seeded stream, and every test
//! asserts determinism or distributional properties rather than exact
//! draws.
//!
//! Notably absent on purpose: `thread_rng` and OS entropy. Every RNG in
//! this workspace must be constructed from an explicit seed, which is what
//! makes pipeline artifacts byte-identical across runs.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `[0, bound)` via Lemire-style rejection.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded RNG: xoshiro256++.
    ///
    /// Statistically strong, tiny, and fully deterministic from its seed —
    /// a drop-in for upstream `StdRng` everywhere the workspace treats the
    /// stream as opaque.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // expand the seed with SplitMix64, as xoshiro's authors
            // recommend, so similar seeds yield uncorrelated states
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            let v = rng.gen_range(0usize..5);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((1_700..2_300).contains(&c), "skewed buckets: {counts:?}");
        }
        for i in 0..100u64 {
            let v = rng.gen_range(10u64..=10 + i);
            assert!((10..=10 + i).contains(&v));
        }
        let f = rng.gen_range(-2.0f64..3.0);
        assert!((-2.0..3.0).contains(&f));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
