//! A blocking line-protocol client, used by `remedy client`, the smoke
//! test, and the serve benchmarks.

use remedy_obs::Scope as ObsScope;
use remedy_pipeline::json::{self, Value};
use remedy_pipeline::{ErrorKind, PipelineError, RetryPolicy};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One connection to a running server. Requests are answered strictly
/// in order, so a blocking send-then-read round trip is all it takes.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // one-line requests must not sit in Nagle's buffer waiting for
        // a delayed ACK
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// [`Client::connect`] with bounded exponential backoff: a refused
    /// or unreachable address is retried under the given
    /// [`RetryPolicy`] (deterministically jittered, same schedule the
    /// pipeline engine uses), so callers racing daemon startup — the
    /// CLI client, smoke tests — don't need hand-rolled sleep loops.
    pub fn connect_with_retry(addr: &str, policy: &RetryPolicy) -> Result<Client, PipelineError> {
        policy.run("client.connect", &ObsScope::disabled(), || {
            Client::connect(addr)
                .map_err(|e| PipelineError::transient(format!("connect {addr}: {e}")))
        })
    }

    /// Sends one request line and returns the raw response line.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Sends one request and parses the response. An `"ok":false`
    /// response comes back as the typed error its `"kind"` token names,
    /// so callers branch on [`ErrorKind`] exactly like pipeline code.
    pub fn call(&mut self, line: &str) -> Result<Value, PipelineError> {
        let raw = self.request_line(line)?;
        let response =
            json::parse(&raw).map_err(|e| e.map_message(|m| format!("malformed response: {m}")))?;
        match response.field("ok").and_then(Value::as_bool) {
            Some(true) => Ok(response),
            Some(false) => {
                let kind = response
                    .field("kind")
                    .and_then(Value::as_str)
                    .and_then(ErrorKind::parse)
                    .unwrap_or(ErrorKind::Fatal);
                let message = response
                    .field("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown error")
                    .to_string();
                Err(PipelineError::new(kind, message))
            }
            None => Err(PipelineError::corrupt("response missing `ok` field")),
        }
    }
}
