//! Durable session state: columnar snapshots layered under the WAL,
//! and crash recovery that stitches the two back into a live session.
//!
//! With `--data-dir` every named session owns one directory:
//!
//! ```text
//! <data-dir>/<session>/
//!   snapshot-<epoch>.bin   columnar checkpoint (dataset::store body)
//!   wal-<epoch>.log        edit batches accepted after that checkpoint
//! ```
//!
//! A snapshot file is a `remedy-snapshot v1` magic line, a fixed meta
//! block (`epoch:u64 edits:u64 batches:u64 digest:u128`), and then the
//! exact bytes `dataset::store::to_binary` produces — packed-key
//! sidecar included, so recovery rebuilds the session's `RegionIndex`
//! through `try_build_from_packed` instead of re-packing every row.
//! Snapshots are written to a `.tmp` sibling, fsync'd, and renamed into
//! place; only after the rename lands is a fresh WAL segment created
//! and the older generation deleted, so at every instant the directory
//! holds at least one snapshot whose WAL continuation is intact.
//!
//! **Recovery invariant.** Opening the newest snapshot that decodes and
//! replaying every WAL record with `seq > snapshot.epoch` (in order,
//! contiguously) yields a session byte-identical — same `remedy-ibs v1`
//! `identify` text, same epoch/edit/batch counters — to one that never
//! crashed. A sequence gap, an undecodable snapshot with no older
//! fallback, or a foreign file is a typed corrupt-artifact error; a
//! torn WAL tail is truncated and counted, never mis-applied.

use crate::session::Session;
use crate::wal::{self, WalWriter};
use remedy_dataset::format::{content_digest, Magic};
use remedy_dataset::{store, Dataset, RowEdit};
use remedy_obs::Scope as ObsScope;
use remedy_pipeline::{failpoint, PipelineError};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic line of a snapshot file.
pub const SNAPSHOT: Magic = Magic::new("remedy-snapshot", 1);

/// Fixed meta block after the magic line: `epoch edits batches digest`.
const META_LEN: usize = 8 + 8 + 8 + 16;

/// When a durable session checkpoints and when it sheds load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurablePolicy {
    /// Snapshot once this many edit batches accumulate past the last
    /// checkpoint (each intervening batch still fsyncs to the WAL).
    pub snapshot_every: u64,
    /// Hard bound on the un-checkpointed WAL backlog: when snapshots
    /// keep failing and the backlog reaches this, `ingest` sheds with a
    /// transient `overloaded` error instead of growing the log forever.
    pub wal_backlog: u64,
}

impl Default for DurablePolicy {
    fn default() -> DurablePolicy {
        DurablePolicy {
            snapshot_every: 64,
            wal_backlog: 1024,
        }
    }
}

/// Where durable sessions live and how they checkpoint.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// The `--data-dir` root; each session owns `<root>/<name>/`.
    pub root: PathBuf,
    /// Checkpoint/backlog policy shared by every session.
    pub policy: DurablePolicy,
}

/// Whether a session name can own a directory under the data dir.
/// Enforced only in durable mode; in-memory sessions keep accepting
/// arbitrary names.
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name != "."
        && name != ".."
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// The durable half of one session: its directory, the open WAL
/// segment, and the epoch of the newest durable snapshot.
#[derive(Debug)]
pub struct Durable {
    dir: PathBuf,
    wal: WalWriter,
    snapshot_epoch: u64,
    policy: DurablePolicy,
}

impl Durable {
    /// Creates (or wipes and re-creates) the session directory, writes
    /// the initial snapshot at `session.epoch`, and opens a fresh WAL
    /// segment. Called by `load` in durable mode.
    pub fn create(
        config: &DurableConfig,
        name: &str,
        session: &Session,
        obs: &ObsScope,
    ) -> Result<Durable, PipelineError> {
        if !valid_session_name(name) {
            return Err(PipelineError::invalid_plan(format!(
                "session name `{name}` cannot own a data directory \
                 (use 1-64 characters from [A-Za-z0-9._-])"
            )));
        }
        let dir = config.root.join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| PipelineError::transient(format!("create {}: {e}", dir.display())))?;
        let epoch = session.epoch;
        write_snapshot(
            &dir,
            &session.data,
            epoch,
            session.edits,
            session.batches,
            obs,
        )?;
        let wal = WalWriter::create(&wal_path(&dir, epoch))?;
        cleanup(&dir, epoch);
        Ok(Durable {
            dir,
            wal,
            snapshot_epoch: epoch,
            policy: config.policy,
        })
    }

    /// The checkpoint/backlog policy.
    pub fn policy(&self) -> &DurablePolicy {
        &self.policy
    }

    /// Epoch of the newest durable snapshot.
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch
    }

    /// Edit batches sitting in the WAL past the last checkpoint.
    pub fn backlog(&self, epoch: u64) -> u64 {
        epoch.saturating_sub(self.snapshot_epoch)
    }

    /// Appends one batch to the WAL and makes it durable (see
    /// [`WalWriter::append`] for the rollback-on-failure contract).
    pub fn append(
        &mut self,
        seq: u64,
        edits: &[RowEdit],
        obs: &ObsScope,
    ) -> Result<(), PipelineError> {
        self.wal.append(seq, edits, obs)
    }

    /// Checkpoints the session at `epoch`: snapshot to tmp, fsync,
    /// rename, then rotate to a fresh WAL segment and delete the older
    /// generation. On failure the previous snapshot + WAL pair is still
    /// intact and recovery-complete.
    pub fn snapshot(
        &mut self,
        data: &Dataset,
        epoch: u64,
        edits: u64,
        batches: u64,
        obs: &ObsScope,
    ) -> Result<(), PipelineError> {
        write_snapshot(&self.dir, data, epoch, edits, batches, obs)?;
        self.wal = WalWriter::create(&wal_path(&self.dir, epoch))?;
        self.snapshot_epoch = epoch;
        cleanup(&self.dir, epoch);
        Ok(())
    }
}

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch:020}.bin"))
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch:020}.log"))
}

/// Writes `snapshot-<epoch>.bin` through a tmp file + atomic rename,
/// with the `serve.snapshot.write` / `serve.snapshot.rename` fail-point
/// sites at the two durability steps.
fn write_snapshot(
    dir: &Path,
    data: &Dataset,
    epoch: u64,
    edits: u64,
    batches: u64,
    obs: &ObsScope,
) -> Result<(), PipelineError> {
    let tmp = dir.join(format!("snapshot-{epoch:020}.tmp"));
    let result = (|| {
        let io = |e: std::io::Error| {
            PipelineError::transient(format!("snapshot {}: {e}", tmp.display()))
        };
        failpoint::check("serve.snapshot", "write")?;
        let body = store::to_binary(data);
        let mut out = Vec::with_capacity(SNAPSHOT.line().len() + 1 + META_LEN + body.len());
        out.extend_from_slice(SNAPSHOT.line().as_bytes());
        out.push(b'\n');
        out.extend_from_slice(&epoch.to_le_bytes());
        out.extend_from_slice(&edits.to_le_bytes());
        out.extend_from_slice(&batches.to_le_bytes());
        out.extend_from_slice(&content_digest(&body).to_le_bytes());
        out.extend_from_slice(&body);
        let mut file = std::fs::File::create(&tmp).map_err(io)?;
        file.write_all(&out).map_err(io)?;
        file.sync_data().map_err(io)?;
        drop(file);
        failpoint::check("serve.snapshot", "rename")?;
        std::fs::rename(&tmp, snapshot_path(dir, epoch)).map_err(io)?;
        // the rename must survive a crash of the *directory*, too
        let _ = std::fs::File::open(dir).and_then(|d| d.sync_all());
        obs.add("snapshot.write", 1);
        obs.add("snapshot.bytes", out.len() as u64);
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Decodes one snapshot file into `(stored, epoch, edits, batches)`.
fn read_snapshot(path: &Path) -> Result<(store::Stored, u64, u64, u64), PipelineError> {
    let bytes = std::fs::read(path)
        .map_err(|e| PipelineError::transient(format!("{}: {e}", path.display())))?;
    let corrupt = |detail: String| PipelineError::corrupt(format!("{}: {detail}", path.display()));
    if !SNAPSHOT.sniff(&bytes) {
        let first = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]);
        let detail = SNAPSHOT
            .expect(std::str::from_utf8(first).ok())
            .map(|_| "truncated magic line".to_string())
            .unwrap_or_else(|e| e.to_string());
        return Err(corrupt(format!("not a snapshot: {detail}")));
    }
    let meta_start = SNAPSHOT.line().len() + 1;
    let Some(meta) = bytes.get(meta_start..meta_start + META_LEN) else {
        return Err(corrupt("truncated meta block".to_string()));
    };
    let epoch = u64::from_le_bytes(meta[0..8].try_into().unwrap());
    let edits = u64::from_le_bytes(meta[8..16].try_into().unwrap());
    let batches = u64::from_le_bytes(meta[16..24].try_into().unwrap());
    let digest = u128::from_le_bytes(meta[24..40].try_into().unwrap());
    let body = &bytes[meta_start + META_LEN..];
    if content_digest(body) != digest {
        return Err(corrupt("body digest mismatch".to_string()));
    }
    let stored = store::from_bytes(body).map_err(|e| corrupt(e.to_string()))?;
    Ok((stored, epoch, edits, batches))
}

/// Files named `<prefix><decimal-epoch><suffix>` in `dir`, sorted by
/// epoch ascending.
fn numbered(dir: &Path, prefix: &str, suffix: &str) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut found: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().into_string().ok()?;
            let epoch: u64 = name
                .strip_prefix(prefix)?
                .strip_suffix(suffix)?
                .parse()
                .ok()?;
            Some((epoch, entry.path()))
        })
        .collect();
    found.sort_unstable();
    found
}

/// Deletes leftover tmp files and every snapshot/WAL generation older
/// than `keep`. Best-effort: cleanup failures never fail a request.
fn cleanup(dir: &Path, keep: u64) {
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
    for (epoch, path) in numbered(dir, "snapshot-", ".bin") {
        if epoch < keep {
            let _ = std::fs::remove_file(path);
        }
    }
    for (epoch, path) in numbered(dir, "wal-", ".log") {
        if epoch < keep {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// What [`recover_session`] reports alongside the session.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecoveryStats {
    /// WAL records replayed on top of the snapshot.
    pub replayed: u64,
    /// Bytes of torn WAL tail truncated.
    pub truncated_bytes: u64,
    /// Snapshot files that failed to decode (older fallback used).
    pub snapshots_skipped: u64,
}

/// Rebuilds one session from its directory: newest valid snapshot,
/// then the WAL tail replayed through the same validate-then-apply
/// path live `ingest` uses. Returns the live session (durable handle
/// attached, tail truncated, stale generations cleaned).
pub fn recover_session(
    config: &DurableConfig,
    name: &str,
) -> Result<(Session, RecoveryStats), PipelineError> {
    let dir = config.root.join(name);
    let mut stats = RecoveryStats::default();

    // newest snapshot that decodes wins; damaged ones fall back
    let mut snapshots = numbered(&dir, "snapshot-", ".bin");
    snapshots.reverse();
    if snapshots.is_empty() {
        return Err(PipelineError::corrupt(format!(
            "{}: no snapshot files",
            dir.display()
        )));
    }
    let mut opened = None;
    let mut first_err = None;
    for (_, path) in &snapshots {
        match read_snapshot(path) {
            Ok(decoded) => {
                opened = Some(decoded);
                break;
            }
            Err(e) => {
                stats.snapshots_skipped += 1;
                first_err.get_or_insert(e);
            }
        }
    }
    let Some((stored, snap_epoch, edits, batches)) = opened else {
        return Err(first_err.expect("at least one snapshot failed"));
    };
    let mut session = Session::try_open_stored(stored)?;
    session.epoch = snap_epoch;
    session.edits = edits;
    session.batches = batches;

    // replay the WAL tail: skip records the snapshot covers, demand
    // contiguity past it — a gap means a lost generation, and applying
    // around it would silently serve a wrong index
    let segments = numbered(&dir, "wal-", ".log");
    let mut writer = None;
    let last = segments.len().checked_sub(1);
    for (i, (seg_epoch, path)) in segments.iter().enumerate() {
        let replayed = wal::replay(path)?;
        stats.truncated_bytes += replayed.torn_bytes;
        for record in replayed.records {
            if record.seq <= snap_epoch {
                continue;
            }
            if record.seq != session.epoch + 1 {
                return Err(PipelineError::corrupt(format!(
                    "{}: WAL sequence gap (have epoch {}, next record is {})",
                    path.display(),
                    session.epoch,
                    record.seq
                )));
            }
            session.replay_batch(&record.edits).map_err(|e| {
                PipelineError::corrupt(format!(
                    "{}: record {} does not apply: {}",
                    path.display(),
                    record.seq,
                    e.message()
                ))
            })?;
            stats.replayed += 1;
        }
        if Some(i) == last && *seg_epoch >= snap_epoch {
            writer = Some(WalWriter::open(path, replayed.valid_len)?);
        }
    }
    // no usable segment (crash between snapshot rename and segment
    // creation): finish the interrupted rotation now
    let wal = match writer {
        Some(w) => w,
        None => WalWriter::create(&wal_path(&dir, snap_epoch))?,
    };
    session.durable = Some(Durable {
        dir: dir.clone(),
        wal,
        snapshot_epoch: snap_epoch,
        policy: config.policy,
    });
    cleanup(&dir, snap_epoch);
    Ok((session, stats))
}

/// Recovers every session directory under the data-dir root. A session
/// that fails to recover is reported (counter + stderr) and left on
/// disk untouched — one damaged session must not keep the daemon from
/// serving the healthy ones — but is *not* served, so damage is never
/// silent: loading that name again replaces it explicitly.
pub fn recover_all(config: &DurableConfig, obs: &ObsScope) -> Vec<(String, Session)> {
    let Ok(entries) = std::fs::read_dir(&config.root) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .flatten()
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| valid_session_name(name))
        .collect();
    names.sort_unstable();
    let mut recovered = Vec::new();
    for name in names {
        match recover_session(config, &name) {
            Ok((session, stats)) => {
                obs.add("recover.sessions", 1);
                obs.add("recover.records", stats.replayed);
                obs.add("recover.truncated_bytes", stats.truncated_bytes);
                obs.add("recover.snapshots_skipped", stats.snapshots_skipped);
                recovered.push((name, session));
            }
            Err(e) => {
                obs.add("recover.corrupt", 1);
                eprintln!("remedy-serve: session `{name}` not recovered: {e}");
            }
        }
    }
    recovered
}
