//! # remedy-serve
//!
//! A resident fairness service: named datasets with delta-maintained
//! [`RegionIndex`](remedy_core::RegionIndex)es held in memory by a
//! long-lived daemon, answered over TCP with a line-delimited JSON
//! protocol.
//!
//! The batch CLI pays the full build cost (load, discretize, one
//! counting pass over the lattice) on every invocation. The service
//! pays it once per [`Session`]: `load` builds the index, `ingest`
//! streams [`RowEdit`](remedy_dataset::RowEdit) batches through the
//! index's delta maintenance, and `identify` answers from the resident
//! counts — byte-identical to a cold batch run on the same final
//! dataset, at a fraction of the latency.
//!
//! ## Protocol
//!
//! One JSON object per line, one response line per request, in order:
//!
//! ```text
//! → {"op":"load","session":"a","source":"compas","rows":2000}
//! ← {"ok":true,"op":"load","session":"a","rows":2000}
//! → {"op":"ingest","session":"a","edits":[{"kind":"flip","row":3}]}
//! ← {"ok":true,"op":"ingest","applied":1,"rows":2000}
//! → {"op":"identify","session":"a","tau":0.1}
//! ← {"ok":true,"op":"identify","count":17,"rows":2000,"text":"remedy-ibs v1\n…"}
//! ```
//!
//! Errors reuse the pipeline taxonomy: every failure response carries a
//! `"kind"` token ([`ErrorKind`](remedy_pipeline::ErrorKind)) so clients
//! decide retry policy the same way the pipeline engine does.
//!
//! ## Failure model
//!
//! Each connection runs on its own thread; each request is executed
//! under `catch_unwind`, so a panicking request becomes a structured
//! `stage-panic` response and the daemon — including every other
//! session and connection — keeps serving. Mutating operations validate
//! their whole input before touching any state, which is what makes
//! poisoned-lock recovery sound (see [`session::lock_session`]).
//!
//! ## Durability
//!
//! With a `--data-dir`, each named session owns an on-disk directory:
//! an append-only, fsync'd write-ahead log of edit batches ([`wal`])
//! layered over periodic columnar snapshots ([`durable`]). A mutation
//! is acknowledged only after it is durable; on restart the server
//! recovers every session — newest valid snapshot plus WAL tail replay —
//! byte-identical to one that never crashed. The front door sheds load
//! instead of stalling: past `--max-conns`, or when a session's WAL
//! backlog hits its bound with checkpoints failing, clients get a typed
//! transient `overloaded` error and can back off and retry.

pub mod client;
pub mod durable;
pub mod protocol;
pub mod server;
pub mod session;
pub mod wal;

pub use client::Client;
pub use durable::{Durable, DurableConfig, DurablePolicy};
pub use protocol::Request;
pub use server::{ServeOptions, Server};
pub use session::{Registry, Session, SessionSummary};
