//! The wire protocol: request parsing and response rendering.
//!
//! Requests and responses are single-line JSON objects, read by the
//! strict shared parser in [`remedy_pipeline::json`] (bounded depth, no
//! trailing garbage, damage is an error, never a panic). Every request
//! has an `"op"` field and may carry an `"id"` correlation token and a
//! `"deadline_ms"` override; responses echo both and add either
//! `"ok":true` plus op-specific fields or `"ok":false` plus the
//! pipeline error taxonomy.

use remedy_classifiers::ModelKind;
use remedy_core::{Algorithm, Enumeration, IbsParams, Neighborhood, Scope as IbsScope, Technique};
use remedy_dataset::RowEdit;
use remedy_fairness::Statistic;
use remedy_pipeline::json::{self, json_str, Value};
use remedy_pipeline::{ErrorKind, PipelineError};

/// Every operation the service answers.
pub const OPS: [&str; 7] = [
    "load", "ingest", "identify", "audit", "remedy", "stats", "shutdown",
];

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// The operation (one of [`OPS`]).
    pub op: String,
    /// Client correlation token, echoed verbatim in the response.
    pub id: Option<String>,
    /// Per-request deadline override in milliseconds (0 disables).
    pub deadline_ms: Option<u64>,
    /// The whole request object, for op-specific fields.
    pub body: Value,
}

/// Reclassifies a reader error: at the request boundary a bad line is an
/// invalid *plan* (the client sent garbage), not a torn artifact.
fn invalid(e: PipelineError) -> PipelineError {
    PipelineError::invalid_plan(e.message().to_string())
}

/// Parses one request line; every failure is `invalid-plan`.
pub fn parse_request(line: &str) -> Result<Request, PipelineError> {
    let body = json::parse(line).map_err(invalid)?;
    if !matches!(body, Value::Obj(_)) {
        return Err(PipelineError::invalid_plan("request must be a JSON object"));
    }
    let op = body.str_field("op").map_err(invalid)?.to_string();
    if !OPS.contains(&op.as_str()) {
        return Err(PipelineError::invalid_plan(format!(
            "unknown op `{op}` (expected one of {})",
            OPS.join("|")
        )));
    }
    let id = match body.field("id") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| PipelineError::invalid_plan("`id` must be a string"))?
                .to_string(),
        ),
    };
    let deadline_ms = match body.field("deadline_ms") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            PipelineError::invalid_plan("`deadline_ms` must be an unsigned integer")
        })?),
    };
    Ok(Request {
        op,
        id,
        deadline_ms,
        body,
    })
}

/// Accumulates the op-specific fields of an ok response.
#[derive(Debug, Default)]
pub struct Fields(String);

impl Fields {
    /// An empty field set.
    pub fn new() -> Fields {
        Fields(String::new())
    }

    /// Appends a pre-rendered JSON value (number, bool, array, object).
    pub fn raw(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.0.push(',');
        self.0.push_str(&json_str(key));
        self.0.push(':');
        self.0.push_str(&value.to_string());
        self
    }

    /// Appends a string value, escaped.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, json_str(value))
    }

    /// Appends a float value (NaN/∞ render as null).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, json::json_f64(value))
    }
}

/// Renders an ok response echoing the request's op and id.
pub fn render_ok(req: &Request, fields: &Fields) -> String {
    let mut out = format!("{{\"ok\":true,\"op\":{}", json_str(&req.op));
    if let Some(id) = &req.id {
        out.push_str(&format!(",\"id\":{}", json_str(id)));
    }
    out.push_str(&fields.0);
    out.push('}');
    out
}

/// Renders an error response; `req` is `None` when the line never parsed
/// far enough to know the op.
pub fn render_err(req: Option<&Request>, kind: ErrorKind, message: &str) -> String {
    let mut out = String::from("{\"ok\":false");
    if let Some(req) = req {
        out.push_str(&format!(",\"op\":{}", json_str(&req.op)));
        if let Some(id) = &req.id {
            out.push_str(&format!(",\"id\":{}", json_str(id)));
        }
    }
    out.push_str(&format!(
        ",\"kind\":{},\"error\":{}}}",
        json_str(kind.name()),
        json_str(message)
    ));
    out
}

/// An optional string field; present-but-wrong-type is an error.
pub fn opt_str<'a>(body: &'a Value, name: &str) -> Result<Option<&'a str>, PipelineError> {
    match body.field(name) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| PipelineError::invalid_plan(format!("`{name}` must be a string"))),
    }
}

/// An optional unsigned-integer field.
pub fn opt_u64(body: &Value, name: &str) -> Result<Option<u64>, PipelineError> {
    match body.field(name) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            PipelineError::invalid_plan(format!("`{name}` must be an unsigned integer"))
        }),
    }
}

/// An optional number field.
pub fn opt_f64(body: &Value, name: &str) -> Result<Option<f64>, PipelineError> {
    match body.field(name) {
        None => Ok(None),
        Some(v) => match v {
            Value::Num(_) => Ok(v.as_f64()),
            _ => Err(PipelineError::invalid_plan(format!(
                "`{name}` must be a number"
            ))),
        },
    }
}

/// An optional boolean field.
pub fn opt_bool(body: &Value, name: &str) -> Result<Option<bool>, PipelineError> {
    match body.field(name) {
        None => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| PipelineError::invalid_plan(format!("`{name}` must be a boolean"))),
    }
}

/// The identification parameters of a request: `tau`, `min_size`,
/// `neighborhood`, `scope`, and the `pruned` enumeration toggle, with
/// the same defaults as the batch CLI.
pub fn ibs_params(body: &Value) -> Result<IbsParams, PipelineError> {
    IbsParams::builder()
        .tau_c(opt_f64(body, "tau")?.unwrap_or(0.1))
        .min_size(opt_u64(body, "min_size")?.unwrap_or(30))
        .neighborhood(neighborhood(body)?)
        .scope(ibs_scope(body)?)
        .enumeration(if opt_bool(body, "pruned")?.unwrap_or(false) {
            Enumeration::Pruned
        } else {
            Enumeration::Dense
        })
        .build()
        .map_err(|e| PipelineError::invalid_plan(e.to_string()))
}

/// `"neighborhood"`: `"unit"` | `"full"` | a radius number.
pub fn neighborhood(body: &Value) -> Result<Neighborhood, PipelineError> {
    match body.field("neighborhood") {
        None => Ok(Neighborhood::Unit),
        Some(Value::Str(s)) => match s.as_str() {
            "unit" | "1" => Ok(Neighborhood::Unit),
            "full" => Ok(Neighborhood::Full),
            other => Err(PipelineError::invalid_plan(format!(
                "`neighborhood`: `{other}` is not unit|full|<radius>"
            ))),
        },
        Some(v @ Value::Num(_)) => Ok(Neighborhood::OrderedRadius(
            v.as_f64().expect("numbers parse as f64"),
        )),
        Some(_) => Err(PipelineError::invalid_plan(
            "`neighborhood` must be unit|full|<radius>",
        )),
    }
}

/// `"scope"`: `"lattice"` (default) | `"leaf"` | `"top"`.
pub fn ibs_scope(body: &Value) -> Result<IbsScope, PipelineError> {
    match opt_str(body, "scope")?.unwrap_or("lattice") {
        "lattice" => Ok(IbsScope::Lattice),
        "leaf" => Ok(IbsScope::Leaf),
        "top" => Ok(IbsScope::Top),
        other => Err(PipelineError::invalid_plan(format!(
            "`scope`: `{other}` is not lattice|leaf|top"
        ))),
    }
}

/// `"algorithm"`: `"optimized"` (default) | `"naive"`.
pub fn algorithm(body: &Value) -> Result<Algorithm, PipelineError> {
    match opt_str(body, "algorithm")?.unwrap_or("optimized") {
        "optimized" => Ok(Algorithm::Optimized),
        "naive" => Ok(Algorithm::Naive),
        other => Err(PipelineError::invalid_plan(format!(
            "`algorithm`: `{other}` is not optimized|naive"
        ))),
    }
}

/// `"technique"`: the same tokens the batch CLI accepts.
pub fn technique(body: &Value) -> Result<Technique, PipelineError> {
    match opt_str(body, "technique")?.unwrap_or("ps") {
        "ps" | "preferential" => Ok(Technique::PreferentialSampling),
        "us" | "undersample" => Ok(Technique::Undersampling),
        "dp" | "oversample" => Ok(Technique::Oversampling),
        "massage" | "massaging" => Ok(Technique::Massaging),
        other => Err(PipelineError::invalid_plan(format!(
            "`technique`: `{other}` is not ps|us|dp|massage"
        ))),
    }
}

/// `"model"`: `"dt"` (default) | `"rf"` | `"lg"` | `"nn"`.
pub fn model_kind(body: &Value) -> Result<ModelKind, PipelineError> {
    match opt_str(body, "model")?.unwrap_or("dt") {
        "dt" => Ok(ModelKind::DecisionTree),
        "rf" => Ok(ModelKind::RandomForest),
        "lg" => Ok(ModelKind::LogisticRegression),
        "nn" => Ok(ModelKind::NeuralNetwork),
        other => Err(PipelineError::invalid_plan(format!(
            "`model`: `{other}` is not dt|rf|lg|nn"
        ))),
    }
}

/// `"stat"`: `"fpr"` (default) | `"fnr"` | `"acc"` | `"sel"`.
pub fn statistic(body: &Value) -> Result<Statistic, PipelineError> {
    match opt_str(body, "stat")?.unwrap_or("fpr") {
        "fpr" => Ok(Statistic::Fpr),
        "fnr" => Ok(Statistic::Fnr),
        "acc" => Ok(Statistic::Accuracy),
        "sel" => Ok(Statistic::SelectionRate),
        other => Err(PipelineError::invalid_plan(format!(
            "`stat`: `{other}` is not fpr|fnr|acc|sel"
        ))),
    }
}

/// The `"edits"` array of an ingest request. Each edit is an object:
/// `{"kind":"duplicate","src":N}`, `{"kind":"flip","row":N}`, or
/// `{"kind":"remove","rows":[N,…]}`.
pub fn edits(body: &Value) -> Result<Vec<RowEdit>, PipelineError> {
    let items = body
        .arr_field("edits")
        .map_err(|_| PipelineError::invalid_plan("`edits` must be an array of edit objects"))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| edit(item).map_err(|e| e.map_message(|m| format!("edits[{i}]: {m}"))))
        .collect()
}

fn edit(item: &Value) -> Result<RowEdit, PipelineError> {
    let kind = item
        .str_field("kind")
        .map_err(|_| PipelineError::invalid_plan("missing string field `kind`"))?;
    match kind {
        "duplicate" => Ok(RowEdit::Duplicate {
            src: required_index(item, "src")?,
        }),
        "flip" => Ok(RowEdit::FlipLabel {
            row: required_index(item, "row")?,
        }),
        "remove" => {
            let rows = item
                .arr_field("rows")
                .map_err(|_| PipelineError::invalid_plan("`remove` needs an array field `rows`"))?;
            let rows = rows
                .iter()
                .map(|v| {
                    v.as_u64().map(|n| n as usize).ok_or_else(|| {
                        PipelineError::invalid_plan("`rows` must hold unsigned integers")
                    })
                })
                .collect::<Result<Vec<usize>, _>>()?;
            Ok(RowEdit::Remove { rows })
        }
        other => Err(PipelineError::invalid_plan(format!(
            "`kind`: `{other}` is not duplicate|flip|remove"
        ))),
    }
}

fn required_index(item: &Value, name: &str) -> Result<usize, PipelineError> {
    item.u64_field(name)
        .map(|n| n as usize)
        .map_err(|_| PipelineError::invalid_plan(format!("missing integer field `{name}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject() {
        let req =
            parse_request("{\"op\":\"identify\",\"id\":\"r1\",\"deadline_ms\":250,\"tau\":0.2}")
                .unwrap();
        assert_eq!(req.op, "identify");
        assert_eq!(req.id.as_deref(), Some("r1"));
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(ibs_params(&req.body).unwrap().tau_c, 0.2);

        for bad in [
            "not json",
            "[1,2]",
            "{\"op\":\"frobnicate\"}",
            "{\"op\":\"load\",\"id\":7}",
            "{\"op\":\"load\",\"deadline_ms\":\"soon\"}",
        ] {
            let err = parse_request(bad).expect_err("must reject");
            assert_eq!(err.kind(), ErrorKind::InvalidPlan, "input {bad:?}");
        }
    }

    #[test]
    fn params_default_like_the_cli() {
        let req = parse_request("{\"op\":\"identify\"}").unwrap();
        let params = ibs_params(&req.body).unwrap();
        assert_eq!(params.tau_c, 0.1);
        assert_eq!(params.min_size, 30);
        assert_eq!(params.neighborhood, Neighborhood::Unit);
        assert_eq!(algorithm(&req.body).unwrap(), Algorithm::Optimized);
        assert_eq!(
            technique(&req.body).unwrap(),
            Technique::PreferentialSampling
        );

        let req = parse_request(
            "{\"op\":\"identify\",\"neighborhood\":1.5,\"scope\":\"leaf\",\
             \"algorithm\":\"naive\"}",
        )
        .unwrap();
        assert_eq!(
            neighborhood(&req.body).unwrap(),
            Neighborhood::OrderedRadius(1.5)
        );
        assert_eq!(ibs_scope(&req.body).unwrap(), IbsScope::Leaf);
        assert_eq!(algorithm(&req.body).unwrap(), Algorithm::Naive);
        assert!(ibs_params(
            &parse_request("{\"op\":\"identify\",\"tau\":\"x\"}")
                .unwrap()
                .body
        )
        .is_err());
    }

    #[test]
    fn edits_parse_every_kind() {
        let req = parse_request(
            "{\"op\":\"ingest\",\"edits\":[{\"kind\":\"duplicate\",\"src\":3},\
             {\"kind\":\"flip\",\"row\":1},{\"kind\":\"remove\",\"rows\":[0,5]}]}",
        )
        .unwrap();
        let parsed = edits(&req.body).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0], RowEdit::Duplicate { src: 3 });
        assert_eq!(parsed[1], RowEdit::FlipLabel { row: 1 });
        assert_eq!(parsed[2], RowEdit::Remove { rows: vec![0, 5] });

        let bad = parse_request("{\"op\":\"ingest\",\"edits\":[{\"kind\":\"warp\"}]}").unwrap();
        let err = edits(&bad.body).unwrap_err();
        assert!(err.message().starts_with("edits[0]:"), "{err}");
    }

    #[test]
    fn responses_render_and_round_trip() {
        let req = parse_request("{\"op\":\"stats\",\"id\":\"x\"}").unwrap();
        let mut fields = Fields::new();
        fields.raw("count", 3).str("text", "a\nb").f64("ratio", 0.5);
        let ok = render_ok(&req, &fields);
        let v = json::parse(&ok).unwrap();
        assert!(v.bool_field("ok").unwrap());
        assert_eq!(v.str_field("op").unwrap(), "stats");
        assert_eq!(v.str_field("id").unwrap(), "x");
        assert_eq!(v.u64_field("count").unwrap(), 3);
        assert_eq!(v.str_field("text").unwrap(), "a\nb");

        let err = render_err(Some(&req), ErrorKind::StagePanic, "boom");
        let v = json::parse(&err).unwrap();
        assert!(!v.bool_field("ok").unwrap());
        assert_eq!(v.str_field("kind").unwrap(), "stage-panic");
        let bare = render_err(None, ErrorKind::InvalidPlan, "bad line");
        assert!(json::parse(&bare).unwrap().field("op").is_none());
    }
}
