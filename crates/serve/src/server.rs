//! The daemon: accept loop, per-request isolation, and the op handlers.
//!
//! Thread-per-connection; each request line is parsed, armed with the
//! `serve.req.<op>` fail-point site, executed under `catch_unwind`, and
//! answered with exactly one response line. A panicking request becomes
//! a structured `stage-panic` response; the connection, every sibling
//! connection, and the resident sessions keep working.
//!
//! With a `--data-dir`, sessions are durable: `bind` recovers every
//! session directory before the accept loop starts, `load` creates a
//! WAL + snapshot directory per session, and mutations reach the fsync'd
//! WAL before they are acknowledged (see the `durable` module). The
//! front door sheds load instead of stalling: past `--max-conns` a new
//! connection gets one transient `overloaded` error line and is closed.
//!
//! Per-request metrics are recorded into a short-lived
//! [`Recorder`] and folded into the resident one in a single
//! [`Recorder::merge_from`] at request end, so concurrent requests never
//! interleave counter attribution. `stats` reports the resident
//! snapshot; with a `--trace` sink attached, each request additionally
//! emits a `serve`-scoped span.

use crate::durable::{self, Durable, DurableConfig, DurablePolicy};
use crate::protocol::{self, Fields, Request};
use crate::session::{lock_session, Registry, Session};
use remedy_classifiers::{accuracy, train};
use remedy_core::{remedy_with, RemedyParams};
use remedy_dataset::csv::{LoadOptions, RawTable};
use remedy_dataset::split::train_test_split;
use remedy_dataset::{store, synth, Dataset};
use remedy_fairness::{fairness_index, Explorer, FairnessIndexParams};
use remedy_obs::Recorder;
use remedy_pipeline::error::panic_message;
use remedy_pipeline::json::{json_f64, json_str, Value};
use remedy_pipeline::{failpoint, ErrorKind, PipelineError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// How the daemon is stood up.
pub struct ServeOptions {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Default per-request deadline in milliseconds (0 = none). A
    /// request's own `deadline_ms` field overrides it.
    pub deadline_ms: u64,
    /// Root directory for durable sessions (`None` = in-memory only).
    /// Sessions found under it are recovered before the server accepts.
    pub data_dir: Option<PathBuf>,
    /// Durable mode: snapshot a session once this many edit batches
    /// accumulate past its last checkpoint.
    pub snapshot_every: u64,
    /// Durable mode: shed `ingest` with a transient `overloaded` error
    /// when the un-checkpointed WAL backlog reaches this bound and an
    /// emergency checkpoint fails.
    pub wal_backlog: u64,
    /// Accept gate: connections past this are refused with one
    /// transient `overloaded` error line (0 = unlimited).
    pub max_conns: usize,
    /// How long `run` waits for in-flight connections after `shutdown`.
    pub drain_ms: u64,
    /// The resident recorder. Give it a sink to stream request spans.
    pub recorder: Recorder,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        let policy = DurablePolicy::default();
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            deadline_ms: 0,
            data_dir: None,
            snapshot_every: policy.snapshot_every,
            wal_backlog: policy.wal_backlog,
            max_conns: 0,
            drain_ms: 2000,
            recorder: Recorder::enabled(),
        }
    }
}

/// Shared across the acceptor and every connection thread.
struct State {
    registry: Registry,
    recorder: Recorder,
    default_deadline_ms: u64,
    durable: Option<DurableConfig>,
    max_conns: usize,
    drain_ms: u64,
    shutdown: AtomicBool,
    active: AtomicUsize,
    local_addr: SocketAddr,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Binds the listener (so the ephemeral port is known before the
    /// accept loop starts) and, in durable mode, recovers every session
    /// directory under the data dir — so by the time the address is
    /// printed, every surviving session is already serving.
    pub fn bind(options: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        let local_addr = listener.local_addr()?;
        let durable = match options.data_dir {
            Some(root) => {
                std::fs::create_dir_all(&root)?;
                Some(DurableConfig {
                    root,
                    policy: DurablePolicy {
                        snapshot_every: options.snapshot_every.max(1),
                        wal_backlog: options.wal_backlog.max(1),
                    },
                })
            }
            None => None,
        };
        let registry = Registry::default();
        if let Some(config) = &durable {
            let recovered = durable::recover_all(config, &options.recorder.scope("serve"));
            for (name, session) in recovered {
                registry.insert(&name, session);
            }
        }
        Ok(Server {
            listener,
            state: Arc::new(State {
                registry,
                recorder: options.recorder,
                default_deadline_ms: options.deadline_ms,
                durable,
                max_conns: options.max_conns,
                drain_ms: options.drain_ms,
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                local_addr,
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Serves until a `shutdown` request, then drains in-flight
    /// connections (bounded wait, `--drain-ms`).
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            if self.state.max_conns > 0
                && self.state.active.load(Ordering::SeqCst) >= self.state.max_conns
            {
                shed_conn(&self.state, stream);
                continue;
            }
            let state = Arc::clone(&self.state);
            state.active.fetch_add(1, Ordering::SeqCst);
            thread::spawn(move || {
                handle_conn(&state, stream);
                state.active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        // bounded drain: connections that are mid-request get a moment
        // to write their response; ones blocked on an idle client die
        // with the process
        let deadline = Instant::now() + Duration::from_millis(self.state.drain_ms);
        while self.state.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        let abandoned = self.state.active.load(Ordering::SeqCst);
        if abandoned > 0 {
            self.state
                .recorder
                .scope("serve")
                .add("drain.abandoned", abandoned as u64);
        }
        Ok(())
    }
}

/// The accept gate: past `--max-conns`, a new connection is answered
/// with a single transient `overloaded` error line and closed — clients
/// with retry backoff get a clean signal instead of a stalled socket.
fn shed_conn(state: &Arc<State>, stream: TcpStream) {
    state.recorder.scope("serve").add("shed.conns", 1);
    let mut writer = stream;
    let _ = writer.set_nodelay(true);
    let line = protocol::render_err(
        None,
        ErrorKind::Transient,
        &format!(
            "overloaded: connection limit reached ({} active)",
            state.max_conns
        ),
    );
    let _ = writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"));
}

fn handle_conn(state: &Arc<State>, stream: TcpStream) {
    // responses are single lines; flush them immediately instead of
    // letting Nagle's algorithm hold them for a delayed ACK
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let response = respond(state, line);
        let write = writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"));
        if write.is_err() || state.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    if state.shutdown.load(Ordering::SeqCst) {
        // wake the acceptor so it notices the flag even with no new
        // clients arriving
        let _ = TcpStream::connect(state.local_addr);
    }
}

/// Parses, executes (with isolation and deadline), meters, renders.
fn respond(state: &Arc<State>, line: &str) -> String {
    let req = match protocol::parse_request(line) {
        Ok(req) => req,
        Err(e) => return protocol::render_err(None, e.kind(), e.message()),
    };
    let started = Instant::now();
    let req_rec = Recorder::enabled();
    let result = {
        // a span on the resident recorder, so --trace shows one span
        // per request
        let _span = state.recorder.scope("serve").span(&req.op);
        let deadline_ms = req.deadline_ms.unwrap_or(state.default_deadline_ms);
        if deadline_ms == 0 {
            execute(state, &req, &req_rec)
        } else {
            execute_with_deadline(state, &req, &req_rec, deadline_ms)
        }
    };
    // one merge per request: counters/histograms land atomically, so
    // concurrent requests cannot interleave attribution
    let serve = req_rec.scope("serve");
    serve.add(&format!("req.{}", req.op), 1);
    if let Err(e) = &result {
        serve.add(&format!("err.{}.{}", req.op, e.kind().name()), 1);
    }
    serve.observe(
        &format!("req_us.{}", req.op),
        started.elapsed().as_micros() as u64,
    );
    state.recorder.merge_from(&req_rec);
    match result {
        Ok(fields) => protocol::render_ok(&req, &fields),
        Err(e) => protocol::render_err(Some(&req), e.kind(), &e.to_string()),
    }
}

/// Runs the handler on a worker thread and gives up after the deadline.
/// The worker is detached on timeout: it still finishes (releasing any
/// session lock it holds) but its result is discarded — so a timed-out
/// *mutation* may still land. That escape is observable, not silent:
/// the abandonment is counted, and because every mutating response and
/// `stats` echo the session's monotonic `epoch`, a client can compare
/// the epoch it last saw against the session's current one to learn
/// whether the abandoned batch applied.
fn execute_with_deadline(
    state: &Arc<State>,
    req: &Request,
    req_rec: &Recorder,
    deadline_ms: u64,
) -> Result<Fields, PipelineError> {
    let (tx, rx) = mpsc::channel();
    let state = Arc::clone(state);
    let worker_req = req.clone();
    let worker_rec = req_rec.clone();
    thread::spawn(move || {
        let _ = tx.send(execute(&state, &worker_req, &worker_rec));
    });
    match rx.recv_timeout(Duration::from_millis(deadline_ms)) {
        Ok(result) => result,
        Err(_) => {
            req_rec.scope("serve").add("deadline.abandoned", 1);
            Err(
                PipelineError::transient(format!("deadline exceeded after {deadline_ms}ms"))
                    .in_stage(&req.op),
            )
        }
    }
}

/// Panic isolation around the fail-point gate and op dispatch. The
/// `serve.req.<op>` site fires at request entry (inside the unwind
/// boundary, so an injected panic exercises containment); the
/// `serve.locked.<op>` sites inside handlers fire while a session lock
/// is held, exercising poisoned-lock recovery.
fn execute(state: &Arc<State>, req: &Request, rec: &Recorder) -> Result<Fields, PipelineError> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        failpoint::check("serve.req", &req.op).map_err(|e| e.in_stage(&req.op))?;
        dispatch(state, req, rec)
    }));
    match result {
        Ok(result) => result,
        Err(payload) => {
            Err(PipelineError::stage_panic(panic_message(payload.as_ref())).in_stage(&req.op))
        }
    }
}

fn dispatch(state: &Arc<State>, req: &Request, rec: &Recorder) -> Result<Fields, PipelineError> {
    match req.op.as_str() {
        "load" => op_load(state, req, rec),
        "ingest" => op_ingest(state, req, rec),
        "identify" => op_identify(state, req, rec),
        "audit" => op_audit(state, req),
        "remedy" => op_remedy(state, req, rec),
        "stats" => op_stats(state),
        "shutdown" => {
            state.shutdown.store(true, Ordering::SeqCst);
            // this connection is one of `active`; the rest are drained
            let draining = state.active.load(Ordering::SeqCst).saturating_sub(1);
            let mut fields = Fields::new();
            fields
                .raw("stopping", true)
                .raw("draining", draining)
                .raw("drain_ms", state.drain_ms);
            Ok(fields)
        }
        other => Err(PipelineError::invalid_plan(format!("unknown op `{other}`"))),
    }
}

fn session_name(req: &Request) -> Result<&str, PipelineError> {
    req.body
        .str_field("session")
        .map_err(|_| PipelineError::invalid_plan("missing string field `session`"))
}

fn op_load(state: &Arc<State>, req: &Request, rec: &Recorder) -> Result<Fields, PipelineError> {
    let name = session_name(req)?;
    let source = req
        .body
        .str_field("source")
        .map_err(|_| PipelineError::invalid_plan("missing string field `source`"))?;
    // dataset-artifact files (binary columnar or exact text, recognized
    // by magic) open directly; binary ones hand their persisted packed
    // keys to the index so the initial counting pass skips re-packing
    let mut session = match stored_artifact(source)? {
        Some(stored) => {
            rec.scope("load")
                .add("rows_loaded", stored.data.len() as u64);
            Session::try_open_stored(stored)?
        }
        None => {
            let data = open_dataset(&req.body)?;
            rec.scope("load").add("rows_loaded", data.len() as u64);
            Session::try_open(data)?
        }
    };
    if let Some(config) = &state.durable {
        // (re)loading a name wipes and re-creates its directory: the
        // initial snapshot IS the session's durable state from here on
        session.durable = Some(Durable::create(
            config,
            name,
            &session,
            &rec.scope("serve"),
        )?);
    }
    let rows = session.data.len();
    let epoch = session.epoch;
    // the initial counting pass shows up as counting.rebuild.* counters
    session.index.flush_obs(&rec.scope("load"));
    state.registry.insert(name, session);
    let mut fields = Fields::new();
    fields
        .str("session", name)
        .raw("rows", rows)
        .raw("epoch", epoch);
    Ok(fields)
}

/// Reads `source` as a persisted dataset artifact, or `None` when it is
/// a builtin generator name or not an artifact file (CSV falls through
/// to [`open_dataset`]).
fn stored_artifact(source: &str) -> Result<Option<remedy_dataset::Stored>, PipelineError> {
    if matches!(source, "adult" | "compas" | "law" | "wide") {
        return Ok(None);
    }
    let Ok(bytes) = std::fs::read(source) else {
        return Ok(None);
    };
    if store::sniff(&bytes).is_none() {
        return Ok(None);
    }
    store::from_bytes(&bytes)
        .map(Some)
        .map_err(|e| PipelineError::invalid_plan(format!("{source}: {e}")))
}

/// `"source"`: a built-in generator name (`adult|compas|law`, sized by
/// `"rows"`, seeded by `"seed"`; `wide` also takes `"arity"`), a dataset
/// artifact path (handled by [`stored_artifact`] before this runs), or a
/// CSV path (needs `"label"` and `"protected"`; accepts `"positive"` and
/// `"bins"`).
fn open_dataset(body: &Value) -> Result<Dataset, PipelineError> {
    let source = body
        .str_field("source")
        .map_err(|_| PipelineError::invalid_plan("missing string field `source`"))?;
    let seed = protocol::opt_u64(body, "seed")?.unwrap_or(42);
    let rows = protocol::opt_u64(body, "rows")?.unwrap_or(0) as usize;
    match (source, rows) {
        ("adult", 0) => return Ok(synth::adult(seed)),
        ("adult", n) => return Ok(synth::adult_n(n, seed)),
        ("compas", 0) => return Ok(synth::compas(seed)),
        ("compas", n) => return Ok(synth::compas_n(n, seed)),
        ("law", 0) => return Ok(synth::law_school(seed)),
        ("law", n) => return Ok(synth::law_school_n(n, seed)),
        ("wide", n) => {
            let arity = protocol::opt_u64(body, "arity")?.unwrap_or(20) as usize;
            if !(1..=32).contains(&arity) {
                return Err(PipelineError::invalid_plan("`arity` must be in 1..=32"));
            }
            let n = if n == 0 { 10_000 } else { n };
            return Ok(synth::wide_n(n, arity, seed));
        }
        _ => {}
    }
    let label = body
        .str_field("label")
        .map_err(|_| PipelineError::invalid_plan("CSV input needs a string field `label`"))?;
    let protected = body
        .arr_field("protected")
        .map_err(|_| PipelineError::invalid_plan("CSV input needs an array field `protected`"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(String::from)
                .ok_or_else(|| PipelineError::invalid_plan("`protected` must hold attribute names"))
        })
        .collect::<Result<Vec<String>, _>>()?;
    if protected.is_empty() {
        return Err(PipelineError::invalid_plan("`protected` must not be empty"));
    }
    let table =
        RawTable::from_path(source).map_err(|e| PipelineError::invalid_plan(e.to_string()))?;
    let mut opts = LoadOptions::new(label);
    opts.protected = protected;
    opts.positive_value = protocol::opt_str(body, "positive")?.map(String::from);
    opts.numeric_bins = protocol::opt_u64(body, "bins")?.unwrap_or(4) as usize;
    table
        .to_dataset(&opts)
        .map_err(|e| PipelineError::invalid_plan(e.to_string()))
}

fn op_ingest(state: &Arc<State>, req: &Request, rec: &Recorder) -> Result<Fields, PipelineError> {
    let session = state.registry.get(session_name(req)?)?;
    let edits = protocol::edits(&req.body)?;
    let mut session = lock_session(&session);
    failpoint::check("serve.locked", "ingest")?;
    // wal.*/snapshot.*/shed.* durability counters land in the serve
    // scope next to req.* — `stats` reports them all from one place
    session.ingest_with(&edits, &rec.scope("serve"))?;
    // per-batch delta work (counting.delta.* counters)
    session.index.flush_obs(&rec.scope("ingest"));
    let mut fields = Fields::new();
    fields
        .raw("applied", edits.len())
        .raw("rows", session.data.len())
        .raw("edits", session.edits)
        .raw("batches", session.batches)
        .raw("epoch", session.epoch);
    Ok(fields)
}

fn op_identify(state: &Arc<State>, req: &Request, rec: &Recorder) -> Result<Fields, PipelineError> {
    let session = state.registry.get(session_name(req)?)?;
    let params = protocol::ibs_params(&req.body)?;
    let algorithm = protocol::algorithm(&req.body)?;
    let mut session = lock_session(&session);
    failpoint::check("serve.locked", "identify")?;
    session.index.flush_deltas();
    let obs = rec.scope("identify");
    let regions = remedy_core::try_identify_in_index_with(&session.index, &params, algorithm, &obs)
        .map_err(|e| PipelineError::invalid_plan(e.to_string()))?;
    // the persisted-regions text is the canonical, bit-exact encoding:
    // comparing it against a batch run is how byte-identity is asserted
    let text = remedy_core::persist::regions_to_text(&regions);
    let mut fields = Fields::new();
    fields
        .raw("count", regions.len())
        .raw("rows", session.data.len())
        .str("text", &text);
    Ok(fields)
}

fn op_audit(state: &Arc<State>, req: &Request) -> Result<Fields, PipelineError> {
    let session = state.registry.get(session_name(req)?)?;
    let model_kind = protocol::model_kind(&req.body)?;
    let stat = protocol::statistic(&req.body)?;
    let seed = protocol::opt_u64(&req.body, "seed")?.unwrap_or(42);
    let tau_d = protocol::opt_f64(&req.body, "tau_d")?.unwrap_or(0.1);
    let min_support = protocol::opt_f64(&req.body, "min_support")?.unwrap_or(0.05);
    let session = lock_session(&session);
    let (train_set, test_set) = train_test_split(&session.data, 0.7, seed)
        .map_err(|e| PipelineError::invalid_plan(e.to_string()))?;
    let model = train(model_kind, &train_set, seed);
    let predictions = model.predict(&test_set);
    let acc = accuracy(&predictions, test_set.labels());
    let fi = fairness_index(
        &test_set,
        &predictions,
        stat,
        &FairnessIndexParams::default(),
    );
    let explorer = Explorer {
        min_support,
        min_size: 30,
        alpha: 0.05,
        max_level: None,
        columns: None,
    };
    let unfair = explorer.unfair_subgroups(&test_set, &predictions, stat, tau_d);
    let schema = test_set.schema();
    let top: Vec<String> = unfair
        .iter()
        .take(20)
        .map(|report| {
            format!(
                "{{\"pattern\":{},\"divergence\":{},\"gamma\":{},\"support\":{}}}",
                json_str(&report.pattern.display(schema).to_string()),
                json_f64(report.divergence),
                json_f64(report.gamma),
                json_f64(report.support)
            )
        })
        .collect();
    let mut fields = Fields::new();
    fields
        .str("model", &model_kind.to_string())
        .str("stat", &stat.to_string())
        .f64("accuracy", acc)
        .f64("fairness_index", fi)
        .raw("unfair_subgroups", unfair.len())
        .raw("top", format!("[{}]", top.join(",")));
    Ok(fields)
}

fn op_remedy(state: &Arc<State>, req: &Request, rec: &Recorder) -> Result<Fields, PipelineError> {
    let session = state.registry.get(session_name(req)?)?;
    let params = RemedyParams::builder()
        .technique(protocol::technique(&req.body)?)
        .tau_c(protocol::opt_f64(&req.body, "tau")?.unwrap_or(0.1))
        .min_size(protocol::opt_u64(&req.body, "min_size")?.unwrap_or(30))
        .neighborhood(protocol::neighborhood(&req.body)?)
        .scope(protocol::ibs_scope(&req.body)?)
        .seed(protocol::opt_u64(&req.body, "seed")?.unwrap_or(42))
        .build()
        .map_err(|e| PipelineError::invalid_plan(e.to_string()))?;
    let apply = protocol::opt_bool(&req.body, "apply")?.unwrap_or(false);
    let mut session = lock_session(&session);
    session.index.flush_deltas();
    let outcome = remedy_with(&session.data, &params, &rec.scope("remedy"));
    let rows_before = session.data.len();
    let rows_after = outcome.dataset.len();
    let schema = session.data.schema();
    // the edit script: one update per remedied region, floats rendered
    // through json_f64 so they round-trip
    let updates: Vec<String> = outcome
        .updates
        .iter()
        .map(|u| {
            format!(
                "{{\"pattern\":{},\"ratio_before\":{},\"target_ratio\":{},\
                 \"pos_delta\":{},\"neg_delta\":{},\"flipped\":{}}}",
                json_str(&u.pattern.display(schema).to_string()),
                json_f64(u.ratio_before),
                json_f64(u.target_ratio),
                u.pos_delta,
                u.neg_delta,
                u.flipped
            )
        })
        .collect();
    if apply {
        // durable mode checkpoints the remedied dataset before the
        // in-memory swap; a failure leaves the session unchanged
        session.try_replace(outcome.dataset, &rec.scope("serve"))?;
        session.index.flush_obs(&rec.scope("remedy"));
    }
    let mut fields = Fields::new();
    fields
        .str("technique", &params.technique.to_string())
        .raw("rows_before", rows_before)
        .raw("rows_after", rows_after)
        .raw("applied", apply)
        .raw("epoch", session.epoch)
        .raw("updates", format!("[{}]", updates.join(",")));
    Ok(fields)
}

fn op_stats(state: &Arc<State>) -> Result<Fields, PipelineError> {
    let sessions: Vec<String> = state
        .registry
        .summaries()
        .into_iter()
        .map(|s| {
            format!(
                "{{\"name\":{},\"rows\":{},\"edits\":{},\"batches\":{},\
                 \"epoch\":{},\"durable\":{}}}",
                json_str(&s.name),
                s.rows,
                s.edits,
                s.batches,
                s.epoch,
                s.durable
            )
        })
        .collect();
    // requests merge their metrics after responding, so the snapshot
    // covers every *completed* request (not this in-flight one)
    let snapshot = state.recorder.snapshot();
    let counters: Vec<String> = snapshot
        .counters
        .iter()
        .map(|(scope, name, value)| {
            format!(
                "{{\"scope\":{},\"name\":{},\"value\":{value}}}",
                json_str(scope),
                json_str(name)
            )
        })
        .collect();
    let histograms: Vec<String> = snapshot
        .histograms
        .iter()
        .map(|(scope, name, h)| {
            format!(
                "{{\"scope\":{},\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\
                 \"max\":{},\"p50\":{},\"p90\":{}}}",
                json_str(scope),
                json_str(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p90
            )
        })
        .collect();
    let mut fields = Fields::new();
    fields
        .raw("sessions", format!("[{}]", sessions.join(",")))
        .raw("counters", format!("[{}]", counters.join(",")))
        .raw("histograms", format!("[{}]", histograms.join(",")));
    Ok(fields)
}
