//! Resident sessions: a named dataset plus its maintained region index.

use crate::durable::Durable;
use remedy_core::RegionIndex;
use remedy_dataset::{Dataset, RowEdit, Stored};
use remedy_obs::Scope as ObsScope;
use remedy_pipeline::PipelineError;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// One named resident dataset and the [`RegionIndex`] kept equal to it.
///
/// The index is built once when the session opens and then maintained by
/// delta batches: every accepted ingest edit is mirrored into it in the
/// same order it mutates the dataset, so an `identify` answered from the
/// resident index is byte-identical to a cold rebuild over the current
/// rows.
pub struct Session {
    /// The live dataset.
    pub data: Dataset,
    /// Delta-maintained counts over `data` (batched; flushed after each
    /// accepted ingest batch).
    pub index: RegionIndex,
    /// Total row edits accepted over the session's lifetime.
    pub edits: u64,
    /// Total ingest batches accepted.
    pub batches: u64,
    /// Monotonic mutation counter: bumps once per accepted edit batch
    /// and once per applied remedy. Echoed in every mutating response
    /// and in `stats`, so a client whose mutation timed out can tell
    /// whether it landed; in durable mode it is also the WAL sequence
    /// number and the snapshot generation.
    pub epoch: u64,
    /// Durable half (WAL + snapshots), present in `--data-dir` mode.
    pub durable: Option<Durable>,
}

impl Session {
    /// Builds the index and switches it to batched delta maintenance.
    /// Panics on protected columns no index kind can carry; servers
    /// should prefer [`Session::try_open`].
    pub fn open(data: Dataset) -> Session {
        Session::try_open(data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Session::open`]: picks the index kind automatically —
    /// dense within the dense arity ceiling, leaf-only sparse for wider
    /// protected sets (which then serve only `pruned` identify requests).
    pub fn try_open(data: Dataset) -> Result<Session, PipelineError> {
        let mut index = RegionIndex::try_build_auto(&data)
            .map_err(|e| PipelineError::invalid_plan(e.to_string()))?;
        index.begin_deltas();
        Ok(Session {
            data,
            index,
            edits: 0,
            batches: 0,
            epoch: 0,
            durable: None,
        })
    }

    /// Opens from a persisted [`Stored`] artifact. When the artifact
    /// carries a packed-key sidecar matching the index layout (binary
    /// columnar files always do, within packing limits), the initial
    /// counting pass reuses it and skips re-packing every row; a missing
    /// or foreign sidecar falls back to a regular [`Session::try_open`]
    /// build, so the result is identical either way.
    pub fn try_open_stored(stored: Stored) -> Result<Session, PipelineError> {
        let Stored { data, packed, .. } = stored;
        if let Some(packed) = packed {
            if let Ok(mut index) = RegionIndex::try_build_from_packed(&data, packed) {
                index.begin_deltas();
                return Ok(Session {
                    data,
                    index,
                    edits: 0,
                    batches: 0,
                    epoch: 0,
                    durable: None,
                });
            }
        }
        Session::try_open(data)
    }

    /// [`Session::ingest_with`] without observability (tests, tools).
    pub fn ingest(&mut self, edits: &[RowEdit]) -> Result<(), PipelineError> {
        self.ingest_with(edits, &ObsScope::disabled())
    }

    /// Applies one edit batch atomically: the whole batch is validated
    /// against simulated row counts first, so a batch naming a removed
    /// or never-existing row is rejected with `invalid-plan` before the
    /// dataset or the index mutates at all.
    ///
    /// In durable mode the batch is WAL-appended and fsync'd *before*
    /// any in-memory state changes — a batch is either durable and
    /// applied, or refused with no trace. Two more durable outcomes are
    /// possible first: if the un-checkpointed backlog has hit the
    /// `wal_backlog` bound and an emergency checkpoint fails, the batch
    /// is shed with a transient `overloaded` error; and once applied,
    /// every `snapshot_every` batches a checkpoint is attempted (its
    /// failure is counted, not surfaced — the batch is already durable
    /// in the WAL).
    pub fn ingest_with(&mut self, edits: &[RowEdit], obs: &ObsScope) -> Result<(), PipelineError> {
        validate_batch(self.data.len(), edits)?;
        let seq = self.epoch + 1;
        if let Some(durable) = self.durable.as_mut() {
            let backlog = durable.backlog(self.epoch);
            if backlog >= durable.policy().wal_backlog {
                if let Err(e) =
                    durable.snapshot(&self.data, self.epoch, self.edits, self.batches, obs)
                {
                    obs.add("shed.backlog", 1);
                    return Err(PipelineError::transient(format!(
                        "overloaded: WAL backlog at bound ({backlog} un-checkpointed \
                         batches) and checkpoint failed: {}",
                        e.message()
                    )));
                }
            }
            durable.append(seq, edits, obs)?;
        }
        self.apply_validated(edits)?;
        if let Some(durable) = self.durable.as_mut() {
            if durable.backlog(self.epoch) >= durable.policy().snapshot_every
                && durable
                    .snapshot(&self.data, self.epoch, self.edits, self.batches, obs)
                    .is_err()
            {
                // the batch is already WAL-durable; a failed periodic
                // checkpoint only grows the backlog
                obs.add("snapshot.err", 1);
            }
        }
        Ok(())
    }

    /// Replays one already-durable batch during recovery: same
    /// validate-then-apply path as live ingest, minus the WAL append.
    pub(crate) fn replay_batch(&mut self, edits: &[RowEdit]) -> Result<(), PipelineError> {
        validate_batch(self.data.len(), edits)?;
        self.apply_validated(edits)
    }

    fn apply_validated(&mut self, edits: &[RowEdit]) -> Result<(), PipelineError> {
        for edit in edits {
            // validated above; the typed path is belt and braces so a
            // validator bug can never desync dataset and index
            self.data
                .try_apply_edit(edit)
                .map_err(|e| PipelineError::invalid_plan(e.to_string()))?;
            self.index.apply_edit(edit);
        }
        self.index.flush_deltas();
        self.edits += edits.len() as u64;
        self.batches += 1;
        self.epoch += 1;
        Ok(())
    }

    /// Replaces the dataset wholesale (a remedy with `"apply":true`).
    /// The new index is built — and in durable mode the new dataset is
    /// checkpointed — *before* any field is assigned, so a failure at
    /// any step leaves the session, in memory and on disk, unchanged.
    pub fn try_replace(&mut self, data: Dataset, obs: &ObsScope) -> Result<(), PipelineError> {
        let mut index = RegionIndex::try_build_auto(&data)
            .map_err(|e| PipelineError::invalid_plan(e.to_string()))?;
        index.begin_deltas();
        let epoch = self.epoch + 1;
        if let Some(durable) = self.durable.as_mut() {
            durable.snapshot(&data, epoch, self.edits, self.batches, obs)?;
        }
        self.index = index;
        self.data = data;
        self.epoch = epoch;
        Ok(())
    }

    /// Infallible [`Session::try_replace`] for in-memory sessions. The
    /// schema is unchanged by a remedy, so the index build cannot fail
    /// after a successful [`Session::try_open`]; panics if it somehow
    /// does (or if a durable checkpoint fails — servers should prefer
    /// [`Session::try_replace`]).
    pub fn replace(&mut self, data: Dataset) {
        self.try_replace(data, &ObsScope::disabled())
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Rejects any edit whose row index is out of range at the point it
/// would apply, walking the batch against a simulated row count.
fn validate_batch(start_len: usize, edits: &[RowEdit]) -> Result<(), PipelineError> {
    let mut len = start_len;
    for (i, edit) in edits.iter().enumerate() {
        let oob = |row: usize, len: usize| {
            PipelineError::invalid_plan(format!(
                "edits[{i}]: row {row} is out of range (dataset has {len} rows)"
            ))
        };
        match edit {
            RowEdit::Duplicate { src } => {
                if *src >= len {
                    return Err(oob(*src, len));
                }
                len += 1;
            }
            RowEdit::FlipLabel { row } => {
                if *row >= len {
                    return Err(oob(*row, len));
                }
            }
            RowEdit::Remove { rows } => {
                let mut distinct = rows.clone();
                distinct.sort_unstable();
                distinct.dedup();
                for &row in &distinct {
                    if row >= len {
                        return Err(oob(row, len));
                    }
                }
                len -= distinct.len();
            }
        }
    }
    Ok(())
}

/// One row of `stats` output: a session's name, size, and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSummary {
    pub name: String,
    pub rows: usize,
    pub edits: u64,
    pub batches: u64,
    pub epoch: u64,
    /// Whether the session has a WAL + snapshot directory behind it.
    pub durable: bool,
}

/// The server's table of named sessions. Each session sits behind its
/// own mutex, so a slow request (a big identify) blocks only its own
/// session; the registry lock is held just long enough to clone an
/// `Arc`.
#[derive(Default)]
pub struct Registry {
    sessions: Mutex<BTreeMap<String, Arc<Mutex<Session>>>>,
}

impl Registry {
    /// Installs the named session, replacing any previous one.
    pub fn insert(&self, name: &str, session: Session) {
        lock_recover(&self.sessions).insert(name.to_string(), Arc::new(Mutex::new(session)));
    }

    /// The named session, or `invalid-plan` if it was never loaded.
    pub fn get(&self, name: &str) -> Result<Arc<Mutex<Session>>, PipelineError> {
        lock_recover(&self.sessions)
            .get(name)
            .cloned()
            .ok_or_else(|| {
                PipelineError::invalid_plan(format!("unknown session `{name}` (load it first)"))
            })
    }

    /// Per-session [`SessionSummary`] rows, for `stats`.
    pub fn summaries(&self) -> Vec<SessionSummary> {
        let sessions: Vec<(String, Arc<Mutex<Session>>)> = lock_recover(&self.sessions)
            .iter()
            .map(|(name, session)| (name.clone(), Arc::clone(session)))
            .collect();
        sessions
            .into_iter()
            .map(|(name, session)| {
                let s = lock_session(&session);
                SessionSummary {
                    name,
                    rows: s.data.len(),
                    edits: s.edits,
                    batches: s.batches,
                    epoch: s.epoch,
                    durable: s.durable.is_some(),
                }
            })
            .collect()
    }
}

/// Locks a session, recovering from poisoning.
///
/// A request that panics is caught at the request boundary, which
/// poisons any session mutex it held. Recovery is sound here because
/// every mutating operation validates its whole input before touching
/// state ([`Session::ingest`]) or prepares its replacement fully before
/// assigning ([`Session::try_replace`]) — so a poisoned session is
/// observationally intact, and refusing to serve it would turn one
/// contained panic into a permanently wedged session.
pub fn lock_session(session: &Arc<Mutex<Session>>) -> MutexGuard<'_, Session> {
    session.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use remedy_core::{identify, identify_in_index, Algorithm, IbsParams};
    use remedy_dataset::synth;

    #[test]
    fn ingest_maintains_index_and_counts() {
        let data = synth::compas_n(400, 7);
        let mut session = Session::open(data.clone());
        session
            .ingest(&[
                RowEdit::Duplicate { src: 3 },
                RowEdit::FlipLabel { row: 10 },
                RowEdit::Remove {
                    rows: vec![0, 0, 5],
                },
            ])
            .unwrap();
        assert_eq!(session.data.len(), 399);
        assert_eq!(session.index.len(), 399);
        assert_eq!((session.edits, session.batches), (3, 1));
        assert_eq!(session.epoch, 1, "one accepted batch bumps the epoch once");
        let params = IbsParams::default();
        let live = identify_in_index(&session.index, &params, Algorithm::Optimized);
        let cold = identify(&session.data, &params, Algorithm::Optimized);
        assert_eq!(live, cold);
    }

    #[test]
    fn stored_artifact_session_matches_fresh_build_and_stays_live() {
        let data = synth::compas_n(300, 5);
        let stored =
            remedy_dataset::store::from_binary(&remedy_dataset::store::to_binary(&data)).unwrap();
        assert!(stored.packed.is_some(), "compas packs within dense limits");
        let mut from_artifact = Session::try_open_stored(stored).unwrap();
        let fresh = Session::open(data);
        let params = IbsParams::default();
        assert_eq!(
            identify_in_index(&from_artifact.index, &params, Algorithm::Optimized),
            identify_in_index(&fresh.index, &params, Algorithm::Optimized),
        );
        // the packed-key fast path must leave the index fully live
        from_artifact
            .ingest(&[RowEdit::FlipLabel { row: 1 }, RowEdit::Duplicate { src: 2 }])
            .unwrap();
        from_artifact.index.flush_deltas();
        let live = identify_in_index(&from_artifact.index, &params, Algorithm::Optimized);
        let cold = identify(&from_artifact.data, &params, Algorithm::Optimized);
        assert_eq!(live, cold);
    }

    #[test]
    fn bad_batch_is_rejected_before_any_mutation() {
        let data = synth::compas_n(100, 7);
        let mut session = Session::open(data.clone());
        // the first edit is valid, the second is not: nothing may apply
        let err = session
            .ingest(&[
                RowEdit::FlipLabel { row: 0 },
                RowEdit::Duplicate { src: 100 },
            ])
            .unwrap_err();
        assert_eq!(err.kind(), remedy_pipeline::ErrorKind::InvalidPlan);
        assert!(err.message().starts_with("edits[1]:"), "{err}");
        assert_eq!(session.data, data);
        assert_eq!((session.edits, session.batches), (0, 0));
        assert_eq!(session.epoch, 0, "rejected batches leave the epoch alone");
        // removes shrink the simulated count: a duplicate of a row that
        // no longer exists after the remove is rejected too
        let remove_then_touch = [
            RowEdit::Remove {
                rows: (0..100).collect(),
            },
            RowEdit::FlipLabel { row: 0 },
        ];
        assert!(session.ingest(&remove_then_touch).is_err());
    }

    #[test]
    fn registry_replaces_and_reports() {
        let registry = Registry::default();
        assert!(registry.get("a").is_err());
        registry.insert("a", Session::open(synth::compas_n(50, 1)));
        registry.insert("b", Session::open(synth::compas_n(80, 1)));
        registry.insert("a", Session::open(synth::compas_n(60, 1)));
        let summary = registry.summaries();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].name, "a");
        assert_eq!(summary[0].rows, 60, "reload replaces the session");
        assert_eq!(summary[1].rows, 80);
        assert!(
            !summary[0].durable,
            "in-memory sessions report durable=false"
        );
    }
}
