//! The append-only write-ahead log of a durable session.
//!
//! Every accepted `ingest` batch is serialized as one record and made
//! durable (`write` + `fsync`) *before* the in-memory dataset or index
//! mutates, so an acknowledged batch survives any crash — including
//! `kill -9` mid-stream. The on-disk shape after the sniffable
//! `remedy-wal v1` magic line:
//!
//! ```text
//! record  := len:u32 digest:u128 payload[len]
//! payload := seq:u64 count:u32 edit...
//! edit    := 0:u8 src:u64            (duplicate)
//!          | 1:u8 row:u64            (flip)
//!          | 2:u8 count:u32 row:u64… (remove)
//! ```
//!
//! `digest` is the FNV-1a/128 hash of the payload (the same
//! [`content_digest`] every binary artifact header uses), and `seq` is
//! the session epoch the batch produced, so replay can skip records a
//! newer snapshot already covers.
//!
//! **Torn-tail rule.** A crash can tear at most the tail of the log:
//! a record that fails its length or digest check ends the readable
//! prefix, [`replay`] reports the prefix and the byte offset it is
//! valid to, and [`WalWriter::open`] truncates the file there before
//! appending again. Random damage anywhere therefore yields either a
//! clean prefix recovery or (for a destroyed magic line) a typed
//! corrupt-artifact error — never a silently wrong record. The
//! `serve.wal.append` / `serve.wal.fsync` fail-point sites let tests
//! inject faults at both durability steps; a failed append rolls the
//! file back to its pre-record length so disk and memory never
//! disagree about whether a batch happened.

use remedy_dataset::format::{content_digest, Magic};
use remedy_dataset::RowEdit;
use remedy_obs::Scope as ObsScope;
use remedy_pipeline::{failpoint, PipelineError};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic line of a WAL segment file.
pub const WAL: Magic = Magic::new("remedy-wal", 1);

/// Per-record framing ahead of the payload: `len:u32 digest:u128`.
const RECORD_HEADER: usize = 4 + 16;

/// Sanity ceiling on one record's payload (a batch of row edits is
/// tiny; anything near this is damage, not data).
const MAX_PAYLOAD: u32 = 1 << 28;

/// One durable edit batch: the session epoch it produced and its edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Session epoch after this batch applied (1-based, contiguous).
    pub seq: u64,
    /// The batch, in application order.
    pub edits: Vec<RowEdit>,
}

/// What [`replay`] found in a segment file.
#[derive(Debug)]
pub struct Replay {
    /// Every record in the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (magic line included).
    pub valid_len: u64,
    /// Bytes past the valid prefix (a torn tail or damage), zero for a
    /// clean file.
    pub torn_bytes: u64,
}

/// Serializes one record (framing included).
pub fn encode_record(seq: u64, edits: &[RowEdit]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + edits.len() * 9);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&(edits.len() as u32).to_le_bytes());
    for edit in edits {
        match edit {
            RowEdit::Duplicate { src } => {
                payload.push(0);
                payload.extend_from_slice(&(*src as u64).to_le_bytes());
            }
            RowEdit::FlipLabel { row } => {
                payload.push(1);
                payload.extend_from_slice(&(*row as u64).to_le_bytes());
            }
            RowEdit::Remove { rows } => {
                payload.push(2);
                payload.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for &row in rows {
                    payload.extend_from_slice(&(row as u64).to_le_bytes());
                }
            }
        }
    }
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&content_digest(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a payload whose digest already checked out. A payload that
/// fails here was *written* wrong, not damaged in place, so the error
/// is corrupt-artifact rather than a torn tail.
fn decode_payload(payload: &[u8]) -> Result<WalRecord, PipelineError> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8], PipelineError> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| PipelineError::corrupt("WAL payload shorter than its structure"))?;
        let slice = &payload[pos..end];
        pos = end;
        Ok(slice)
    };
    let seq = u64::from_le_bytes(take(8)?.try_into().unwrap());
    let count = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
    if count > payload.len() {
        return Err(PipelineError::corrupt("WAL edit count cannot fit payload"));
    }
    let mut edits = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = take(1)?[0];
        edits.push(match tag {
            0 => RowEdit::Duplicate {
                src: u64::from_le_bytes(take(8)?.try_into().unwrap()) as usize,
            },
            1 => RowEdit::FlipLabel {
                row: u64::from_le_bytes(take(8)?.try_into().unwrap()) as usize,
            },
            2 => {
                let n = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
                if n > payload.len() {
                    return Err(PipelineError::corrupt("WAL remove count cannot fit"));
                }
                let rows = (0..n)
                    .map(|_| Ok(u64::from_le_bytes(take(8)?.try_into().unwrap()) as usize))
                    .collect::<Result<Vec<usize>, PipelineError>>()?;
                RowEdit::Remove { rows }
            }
            other => {
                return Err(PipelineError::corrupt(format!(
                    "WAL edit tag {other} is not duplicate|flip|remove"
                )))
            }
        });
    }
    if pos != payload.len() {
        return Err(PipelineError::corrupt("WAL payload has trailing bytes"));
    }
    Ok(WalRecord { seq, edits })
}

/// Reads a segment file and returns its valid record prefix.
///
/// A missing or foreign magic line is a corrupt-artifact error; any
/// record that fails its frame or digest check ends the prefix (the
/// torn-tail rule). Sequence-number gaps are *not* judged here — the
/// recovery layer validates contiguity against the snapshot it pairs
/// the log with.
pub fn replay(path: &Path) -> Result<Replay, PipelineError> {
    let bytes = std::fs::read(path)
        .map_err(|e| PipelineError::transient(format!("{}: {e}", path.display())))?;
    replay_bytes(&bytes).map_err(|e| e.map_message(|m| format!("{}: {m}", path.display())))
}

/// [`replay`] over an in-memory buffer (the unit the damage property
/// tests drive directly).
pub fn replay_bytes(bytes: &[u8]) -> Result<Replay, PipelineError> {
    if !WAL.sniff(bytes) {
        let first = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]);
        let detail = WAL
            .expect(std::str::from_utf8(first).ok())
            .map(|_| "truncated magic line".to_string())
            .unwrap_or_else(|e| e.to_string());
        return Err(PipelineError::corrupt(format!(
            "not a WAL segment: {detail}"
        )));
    }
    let mut pos = WAL.line().len() + 1;
    let mut records = Vec::new();
    let mut valid_len = pos;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + RECORD_HEADER) else {
            break; // torn mid-header
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let digest = u128::from_le_bytes(header[4..].try_into().unwrap());
        if len > MAX_PAYLOAD {
            break; // damaged length field
        }
        let start = pos + RECORD_HEADER;
        let Some(payload) = start
            .checked_add(len as usize)
            .and_then(|end| bytes.get(start..end))
        else {
            break; // torn mid-payload
        };
        if content_digest(payload) != digest {
            break; // damaged payload or frame
        }
        records.push(decode_payload(payload)?);
        pos = start + len as usize;
        valid_len = pos;
    }
    Ok(Replay {
        records,
        valid_len: valid_len as u64,
        torn_bytes: (bytes.len() - valid_len) as u64,
    })
}

/// The append half of a segment: owns the open file and the length of
/// its durable prefix, so a failed append can roll back cleanly.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    len: u64,
}

impl WalWriter {
    /// Creates a fresh segment (truncating any previous file at `path`)
    /// and makes the magic line durable.
    pub fn create(path: &Path) -> Result<WalWriter, PipelineError> {
        let io = |e: std::io::Error| {
            PipelineError::transient(format!("create WAL {}: {e}", path.display()))
        };
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io)?;
        let magic = format!("{}\n", WAL.line());
        file.write_all(magic.as_bytes()).map_err(io)?;
        file.sync_data().map_err(io)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            len: magic.len() as u64,
        })
    }

    /// Opens an existing segment for appending, truncating it to
    /// `valid_len` (the replayed prefix) so a torn tail can never be
    /// extended into a frankenstein record.
    pub fn open(path: &Path, valid_len: u64) -> Result<WalWriter, PipelineError> {
        let io = |e: std::io::Error| {
            PipelineError::transient(format!("open WAL {}: {e}", path.display()))
        };
        let mut file = OpenOptions::new().write(true).open(path).map_err(io)?;
        file.set_len(valid_len).map_err(io)?;
        file.sync_data().map_err(io)?;
        file.seek(SeekFrom::Start(valid_len)).map_err(io)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            len: valid_len,
        })
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and makes it durable. On any failure —
    /// injected at the `serve.wal.append` / `serve.wal.fsync` sites or
    /// real — the file is rolled back to its previous length and the
    /// error returns as transient: the batch did not happen, on disk or
    /// in memory, and the client may retry it.
    pub fn append(
        &mut self,
        seq: u64,
        edits: &[RowEdit],
        obs: &ObsScope,
    ) -> Result<(), PipelineError> {
        let result = self.try_append(seq, edits, obs);
        if result.is_err() {
            // best-effort rollback; if even set_len fails the digest
            // check still fences the half-record at replay time
            let _ = self.file.set_len(self.len);
            let _ = self.file.seek(SeekFrom::Start(self.len));
        }
        result
    }

    fn try_append(
        &mut self,
        seq: u64,
        edits: &[RowEdit],
        obs: &ObsScope,
    ) -> Result<(), PipelineError> {
        let io = |e: std::io::Error| {
            PipelineError::transient(format!("append WAL {}: {e}", self.path.display()))
        };
        failpoint::check("serve.wal", "append")?;
        let record = encode_record(seq, edits);
        self.file.write_all(&record).map_err(io)?;
        failpoint::check("serve.wal", "fsync")?;
        let timer = obs.timer();
        self.file.sync_data().map_err(io)?;
        obs.observe_since("wal_fsync_us", timer);
        obs.add("wal.append", 1);
        obs.add("wal.fsync", 1);
        self.len += record.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(i: u64) -> Vec<RowEdit> {
        vec![
            RowEdit::Duplicate { src: i as usize },
            RowEdit::FlipLabel { row: 0 },
            RowEdit::Remove {
                rows: vec![1, 2 + i as usize],
            },
        ]
    }

    #[test]
    fn records_round_trip_through_a_segment() {
        let dir = std::env::temp_dir().join("remedy_wal_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-0.log");
        let mut writer = WalWriter::create(&path).unwrap();
        let obs = ObsScope::disabled();
        for seq in 1..=5u64 {
            writer.append(seq, &batch(seq), &obs).unwrap();
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.torn_bytes, 0);
        assert_eq!(replayed.records.len(), 5);
        for (i, record) in replayed.records.iter().enumerate() {
            assert_eq!(record.seq, i as u64 + 1);
            assert_eq!(record.edits, batch(record.seq));
        }
    }

    #[test]
    fn torn_tail_is_truncated_to_the_valid_prefix() {
        let dir = std::env::temp_dir().join("remedy_wal_torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-0.log");
        let mut writer = WalWriter::create(&path).unwrap();
        let obs = ObsScope::disabled();
        writer.append(1, &batch(1), &obs).unwrap();
        writer.append(2, &batch(2), &obs).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // a crash mid-write leaves half a record
        std::fs::write(&path, &clean[..clean.len() - 7]).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records.len(), 1, "second record is torn");
        assert!(replayed.torn_bytes > 0);
        // reopening truncates; a fresh append then replays cleanly
        let mut writer = WalWriter::open(&path, replayed.valid_len).unwrap();
        writer.append(2, &batch(9), &obs).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.torn_bytes, 0);
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.records[1].edits, batch(9));
    }

    #[test]
    fn foreign_files_are_typed_corrupt() {
        let err = replay_bytes(b"not a wal at all\nxxxx").unwrap_err();
        assert_eq!(err.kind(), remedy_pipeline::ErrorKind::CorruptArtifact);
        let err = replay_bytes(b"remedy-wal v9\n").unwrap_err();
        assert!(err.message().contains("v1"), "{err}");
    }
}
