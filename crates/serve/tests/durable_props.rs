//! Durability properties of `--data-dir` sessions.
//!
//! The headline promise mirrors the serve one: a session recovered from
//! its snapshot + WAL directory answers `identify` **byte-identically**
//! (`remedy-ibs v1` text) to a session that never went down. The tests
//! drive it three ways — a full daemon restart over TCP, direct
//! `Session`/`Durable` crash simulation (no clean shutdown at all), and
//! a seeded damage property over the WAL bytes that mirrors the
//! `store_props` corruption harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remedy_core::persist::regions_to_text;
use remedy_core::{identify, identify_in_index, Algorithm, IbsParams};
use remedy_dataset::{synth, Dataset, RowEdit};
use remedy_pipeline::json::Value;
use remedy_pipeline::{ErrorKind, RetryPolicy};
use remedy_serve::durable::{self, Durable, DurableConfig, DurablePolicy};
use remedy_serve::{wal, Client, ServeOptions, Server, Session};
use std::path::{Path, PathBuf};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remedy_durable_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_durable(
    data_dir: &Path,
    snapshot_every: u64,
) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeOptions {
        data_dir: Some(data_dir.to_path_buf()),
        snapshot_every,
        ..ServeOptions::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Same distribution as the serve and core counting property harnesses.
fn random_edit(rng: &mut StdRng, len: usize) -> RowEdit {
    match rng.gen_range(0..4u32) {
        0 => RowEdit::Duplicate {
            src: rng.gen_range(0..len),
        },
        1 | 2 => RowEdit::FlipLabel {
            row: rng.gen_range(0..len),
        },
        _ => {
            let count = rng.gen_range(1..=len.min(8));
            let mut rows: Vec<usize> = (0..count).map(|_| rng.gen_range(0..len)).collect();
            rows.sort_unstable();
            rows.dedup();
            RowEdit::Remove { rows }
        }
    }
}

fn edit_json(edit: &RowEdit) -> String {
    match edit {
        RowEdit::Duplicate { src } => format!("{{\"kind\":\"duplicate\",\"src\":{src}}}"),
        RowEdit::FlipLabel { row } => format!("{{\"kind\":\"flip\",\"row\":{row}}}"),
        RowEdit::Remove { rows } => {
            let rows: Vec<String> = rows.iter().map(usize::to_string).collect();
            format!("{{\"kind\":\"remove\",\"rows\":[{}]}}", rows.join(","))
        }
    }
}

fn counter(stats: &Value, scope: &str, name: &str) -> Option<u64> {
    stats.arr_field("counters").ok()?.iter().find_map(|c| {
        (c.field("scope")?.as_str()? == scope && c.field("name")?.as_str()? == name)
            .then(|| c.field("value")?.as_u64())?
    })
}

fn live_text(session: &Session) -> String {
    regions_to_text(&identify_in_index(
        &session.index,
        &IbsParams::default(),
        Algorithm::Optimized,
    ))
}

/// Opens a session over `data`, attaches a durable directory, and
/// streams `batches` seeded edit batches through it, mirroring each
/// into `data`'s clone. Returns the live session and the mirror.
fn durable_session(
    config: &DurableConfig,
    name: &str,
    batches: usize,
    seed: u64,
) -> (Session, Dataset) {
    let obs = remedy_obs::Scope::disabled();
    let mut mirror = synth::compas_n(300, 5);
    let mut session = Session::try_open(mirror.clone()).unwrap();
    session.durable = Some(Durable::create(config, name, &session, &obs).unwrap());
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..batches {
        let edits: Vec<RowEdit> = (0..3)
            .map(|_| {
                let edit = random_edit(&mut rng, mirror.len());
                mirror.apply_edit(&edit);
                edit
            })
            .collect();
        session.ingest_with(&edits, &obs).unwrap();
    }
    (session, mirror)
}

#[test]
fn daemon_restart_recovers_sessions_byte_identically() {
    let dir = temp_dir("restart");
    let (addr, handle) = start_durable(&dir, 4);
    let mut client = Client::connect(&addr).unwrap();
    let loaded = client
        .call(
            "{\"op\":\"load\",\"session\":\"live\",\"source\":\"compas\",\"rows\":400,\"seed\":11}",
        )
        .unwrap();
    assert_eq!(loaded.u64_field("epoch").unwrap(), 0);

    // 6 batches with snapshot_every=4: recovery will cross a rotated
    // snapshot (epoch 4) plus a 2-record WAL tail
    let mut mirror = synth::compas_n(400, 11);
    let mut rng = StdRng::seed_from_u64(0xD00D1E);
    for batch in 1..=6u64 {
        let edits: Vec<String> = (0..10)
            .map(|_| {
                let edit = random_edit(&mut rng, mirror.len());
                mirror.apply_edit(&edit);
                edit_json(&edit)
            })
            .collect();
        let response = client
            .call(&format!(
                "{{\"op\":\"ingest\",\"session\":\"live\",\"edits\":[{}]}}",
                edits.join(",")
            ))
            .unwrap();
        assert_eq!(
            response.u64_field("epoch").unwrap(),
            batch,
            "each accepted batch bumps the echoed epoch"
        );
    }
    let before = client
        .call("{\"op\":\"identify\",\"session\":\"live\"}")
        .unwrap();
    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();

    // restart over the same directory: the session is recovered before
    // the address is even printed, and answers byte-identically
    let (addr, handle) = start_durable(&dir, 4);
    let mut client = Client::connect_with_retry(&addr, &RetryPolicy::new(5, 10, 1)).unwrap();
    let after = client
        .call("{\"op\":\"identify\",\"session\":\"live\"}")
        .unwrap();
    assert_eq!(
        after.str_field("text").unwrap(),
        before.str_field("text").unwrap(),
        "recovered identify diverges from the pre-restart session"
    );
    let cold = identify(&mirror, &IbsParams::default(), Algorithm::Optimized);
    assert_eq!(after.str_field("text").unwrap(), regions_to_text(&cold));

    let stats = client.call("{\"op\":\"stats\"}").unwrap();
    assert_eq!(counter(&stats, "serve", "recover.sessions"), Some(1));
    assert_eq!(
        counter(&stats, "serve", "recover.records"),
        Some(2),
        "snapshot at epoch 4 leaves exactly batches 5 and 6 in the WAL"
    );
    let sessions = stats.arr_field("sessions").unwrap();
    assert_eq!(sessions[0].u64_field("epoch").unwrap(), 6);
    assert_eq!(
        sessions[0].field("durable").and_then(Value::as_bool),
        Some(true)
    );

    // the recovered session is fully live: it keeps accepting edits and
    // keeps matching the cold batch answer
    let edits: Vec<String> = (0..5)
        .map(|_| {
            let edit = random_edit(&mut rng, mirror.len());
            mirror.apply_edit(&edit);
            edit_json(&edit)
        })
        .collect();
    let response = client
        .call(&format!(
            "{{\"op\":\"ingest\",\"session\":\"live\",\"edits\":[{}]}}",
            edits.join(",")
        ))
        .unwrap();
    assert_eq!(response.u64_field("epoch").unwrap(), 7);
    let again = client
        .call("{\"op\":\"identify\",\"session\":\"live\"}")
        .unwrap();
    let cold = identify(&mirror, &IbsParams::default(), Algorithm::Optimized);
    assert_eq!(again.str_field("text").unwrap(), regions_to_text(&cold));

    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn crash_without_shutdown_replays_the_wal_tail() {
    let config = DurableConfig {
        root: temp_dir("crash"),
        // never checkpoints after the initial snapshot: recovery must
        // come entirely from WAL replay
        policy: DurablePolicy {
            snapshot_every: 1000,
            wal_backlog: 2000,
        },
    };
    let (session, mirror) = durable_session(&config, "s", 17, 0xC4A5);
    let expected = live_text(&session);
    assert_eq!(session.epoch, 17);
    // a crash is just dropping everything without any shutdown step:
    // every acknowledged batch was fsync'd before it applied
    drop(session);

    let (mut recovered, stats) = durable::recover_session(&config, "s").unwrap();
    assert_eq!(stats.replayed, 17);
    assert_eq!((stats.truncated_bytes, stats.snapshots_skipped), (0, 0));
    assert_eq!(
        (recovered.epoch, recovered.batches, recovered.edits),
        (17, 17, 51)
    );
    assert!(recovered.durable.is_some());
    assert_eq!(recovered.data, mirror);
    assert_eq!(live_text(&recovered), expected);

    // and the recovered session is append-ready: the next batch lands
    // at the next epoch and survives another recovery
    recovered
        .ingest_with(
            &[RowEdit::FlipLabel { row: 3 }],
            &remedy_obs::Scope::disabled(),
        )
        .unwrap();
    let expected = live_text(&recovered);
    drop(recovered);
    let (again, stats) = durable::recover_session(&config, "s").unwrap();
    assert_eq!((again.epoch, stats.replayed), (18, 18));
    assert_eq!(live_text(&again), expected);
}

#[test]
fn rotation_keeps_one_generation_and_recovers_from_the_newest_snapshot() {
    let config = DurableConfig {
        root: temp_dir("rotate"),
        policy: DurablePolicy {
            snapshot_every: 4,
            wal_backlog: 2000,
        },
    };
    let (session, _mirror) = durable_session(&config, "s", 10, 7);
    let expected = live_text(&session);
    drop(session);

    // snapshots landed at epochs 4 and 8; rotation deleted everything
    // older, so the directory holds exactly one generation
    let dir = config.root.join("s");
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert_eq!(
        files,
        vec![
            format!("snapshot-{:020}.bin", 8),
            format!("wal-{:020}.log", 8)
        ],
        "stale generations must be cleaned after rotation"
    );

    let (recovered, stats) = durable::recover_session(&config, "s").unwrap();
    assert_eq!(stats.replayed, 2, "batches 9 and 10 replay from the WAL");
    assert_eq!(recovered.epoch, 10);
    assert_eq!(live_text(&recovered), expected);
}

#[test]
fn seeded_wal_damage_yields_prefix_recovery_or_typed_corrupt() {
    // build one clean WAL image with a seeded record mix, then damage it
    // 400 ways: a single flipped byte or a truncation, anywhere
    let mut rng = StdRng::seed_from_u64(0x3A15EED);
    let mut records = Vec::new();
    let mut image: Vec<u8> = format!("{}\n", wal::WAL.line()).into_bytes();
    for seq in 1..=12u64 {
        let edits: Vec<RowEdit> = (0..rng.gen_range(1..5usize))
            .map(|_| random_edit(&mut rng, 300))
            .collect();
        image.extend_from_slice(&wal::encode_record(seq, &edits));
        records.push(wal::WalRecord { seq, edits });
    }

    for case in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let mut damaged = image.clone();
        let flip = rng.gen_bool(0.5);
        if flip {
            let pos = rng.gen_range(0..damaged.len());
            damaged[pos] ^= rng.gen_range(1..=255u8);
        } else {
            damaged.truncate(rng.gen_range(0..damaged.len()));
        }
        match wal::replay_bytes(&damaged) {
            Ok(replayed) => {
                // never a silently wrong record: whatever survives must
                // be an exact prefix of what was written
                assert!(
                    replayed.records.len() <= records.len(),
                    "case {case}: more records than were written"
                );
                assert_eq!(
                    replayed.records,
                    records[..replayed.records.len()],
                    "case {case}: recovered records are not a clean prefix"
                );
            }
            Err(e) => {
                assert_eq!(
                    e.kind(),
                    ErrorKind::CorruptArtifact,
                    "case {case}: damage must surface as corrupt-artifact, got {e}"
                );
            }
        }
    }
}

#[test]
fn damaged_session_wal_recovers_a_prefix_state_never_a_wrong_one() {
    let config = DurableConfig {
        root: temp_dir("damage"),
        policy: DurablePolicy {
            snapshot_every: 1000,
            wal_backlog: 2000,
        },
    };
    // record the expected identify text after every prefix of batches
    let obs = remedy_obs::Scope::disabled();
    let mut mirror = synth::compas_n(300, 5);
    let mut session = Session::try_open(mirror.clone()).unwrap();
    session.durable = Some(Durable::create(&config, "s", &session, &obs).unwrap());
    let mut rng = StdRng::seed_from_u64(3);
    let mut prefix_texts = vec![live_text(&session)];
    for _ in 0..8 {
        let edits: Vec<RowEdit> = (0..3)
            .map(|_| {
                let edit = random_edit(&mut rng, mirror.len());
                mirror.apply_edit(&edit);
                edit
            })
            .collect();
        session.ingest_with(&edits, &obs).unwrap();
        prefix_texts.push(live_text(&session));
    }
    drop(session);

    let wal_file = config.root.join("s").join(format!("wal-{:020}.log", 0));
    let clean = std::fs::read(&wal_file).unwrap();

    // flip one byte somewhere in the records region: recovery must land
    // exactly on one of the prefix states
    let magic_len = wal::WAL.line().len() + 1;
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let mut damaged = clean.clone();
        let pos = rng.gen_range(magic_len..damaged.len());
        damaged[pos] ^= rng.gen_range(1..=255u8);
        std::fs::write(&wal_file, &damaged).unwrap();
        let (recovered, stats) = durable::recover_session(&config, "s").unwrap();
        let epoch = recovered.epoch as usize;
        assert!(epoch <= 8, "case {case}: impossible epoch {epoch}");
        assert_eq!(
            live_text(&recovered),
            prefix_texts[epoch],
            "case {case}: recovered state is not the epoch-{epoch} prefix"
        );
        if epoch < 8 {
            assert!(
                stats.truncated_bytes > 0,
                "case {case}: a shortened recovery must report truncation"
            );
        }
        // recovery truncated the tail and reopened the WAL; restore the
        // clean image for the next case
        std::fs::write(&wal_file, &clean).unwrap();
    }

    // a destroyed magic line is a typed error, not a silent empty session
    let mut damaged = clean.clone();
    damaged[0] ^= 0x5a;
    std::fs::write(&wal_file, &damaged).unwrap();
    let Err(err) = durable::recover_session(&config, "s") else {
        panic!("a destroyed magic line must not recover");
    };
    assert_eq!(err.kind(), ErrorKind::CorruptArtifact);
}

#[test]
fn overloaded_daemon_sheds_connections_with_typed_transient_error() {
    let server = Server::bind(ServeOptions {
        max_conns: 1,
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let mut first = Client::connect(&addr).unwrap();
    first.call("{\"op\":\"stats\"}").unwrap();
    // the second connection is accepted, told why it is refused, closed
    let mut second = Client::connect(&addr).unwrap();
    let err = second.call("{\"op\":\"stats\"}").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Transient, "{err}");
    assert!(err.message().contains("overloaded"), "{err}");

    let stats = first.call("{\"op\":\"stats\"}").unwrap();
    assert_eq!(counter(&stats, "serve", "shed.conns"), Some(1));
    let shutdown = first.call("{\"op\":\"shutdown\"}").unwrap();
    assert!(shutdown.u64_field("drain_ms").is_ok());
    handle.join().unwrap().unwrap();
}

#[test]
fn timed_out_mutations_are_counted_and_visible_through_the_epoch() {
    let server = Server::bind(ServeOptions::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect_with_retry(&addr, &RetryPolicy::new(3, 5, 2)).unwrap();

    // a 1ms deadline cannot cover a 100k-row load: the request times
    // out, but the abandoned worker still finishes and installs the
    // session — exactly the escape the epoch makes observable
    let err = client
        .call(
            "{\"op\":\"load\",\"session\":\"big\",\"source\":\"compas\",\
             \"rows\":100000,\"deadline_ms\":1}",
        )
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Transient);
    assert!(err.message().contains("deadline exceeded"), "{err}");

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let stats = client.call("{\"op\":\"stats\"}").unwrap();
        let landed = stats
            .arr_field("sessions")
            .unwrap()
            .iter()
            .any(|s| s.str_field("name") == Ok("big"));
        if landed {
            assert!(counter(&stats, "serve", "deadline.abandoned").unwrap_or(0) >= 1);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned load never landed"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn durable_session_names_must_be_directory_safe() {
    let dir = temp_dir("names");
    let (addr, handle) = start_durable(&dir, 64);
    let mut client = Client::connect(&addr).unwrap();
    let err = client
        .call("{\"op\":\"load\",\"session\":\"../evil\",\"source\":\"compas\",\"rows\":50}")
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidPlan);
    assert!(err.message().contains("data directory"), "{err}");
    // the plain name works and lands on disk
    client
        .call("{\"op\":\"load\",\"session\":\"ok-1\",\"source\":\"compas\",\"rows\":50}")
        .unwrap();
    assert!(dir.join("ok-1").is_dir());
    assert!(!dir.join("../evil").exists());
    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}
