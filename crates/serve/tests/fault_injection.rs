//! Fault-injection tests: a panicking or failing request is contained
//! to its own response; sibling connections, other sessions, and the
//! resident index all keep working.
//!
//! Run with `cargo test -p remedy-serve --features failpoints`.

#![cfg(feature = "failpoints")]

use remedy_core::persist::regions_to_text;
use remedy_core::{identify, identify_in_index, Algorithm, IbsParams};
use remedy_dataset::{synth, RowEdit};
use remedy_pipeline::failpoint::{self, Action};
use remedy_pipeline::ErrorKind;
use remedy_serve::durable::{self, Durable, DurableConfig, DurablePolicy};
use remedy_serve::{Client, ServeOptions, Server, Session};

// The fail-point registry is process-global; tests that arm faults
// serialize on this lock so parallel test threads don't trip each
// other's faults.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn start_server() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeOptions::default()).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn panicking_request_leaves_sibling_connections_and_sessions_intact() {
    let _guard = lock();
    failpoint::clear();
    let (addr, handle) = start_server();
    let mut a = Client::connect(&addr).unwrap();
    let mut b = Client::connect(&addr).unwrap();
    a.call("{\"op\":\"load\",\"session\":\"s1\",\"source\":\"compas\",\"rows\":300,\"seed\":2}")
        .unwrap();
    b.call("{\"op\":\"load\",\"session\":\"s2\",\"source\":\"law\",\"rows\":300,\"seed\":2}")
        .unwrap();
    let baseline = b
        .call("{\"op\":\"identify\",\"session\":\"s2\"}")
        .unwrap()
        .str_field("text")
        .unwrap()
        .to_string();

    // one request panics at entry: a's next call gets a structured
    // stage-panic response on the same connection
    failpoint::set("serve.req.identify", Action::Panic, 1);
    let err = a
        .call("{\"op\":\"identify\",\"session\":\"s1\"}")
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::StagePanic);
    assert!(err.to_string().contains("injected panic"), "{err}");

    // the sibling connection and its resident session are untouched
    let again = b.call("{\"op\":\"identify\",\"session\":\"s2\"}").unwrap();
    assert_eq!(again.str_field("text").unwrap(), baseline);

    // so is the session the panicking request targeted: a retry answers
    // byte-identically to a cold build
    let retry = a.call("{\"op\":\"identify\",\"session\":\"s1\"}").unwrap();
    let cold = identify(
        &synth::compas_n(300, 2),
        &IbsParams::default(),
        Algorithm::Optimized,
    );
    assert_eq!(retry.str_field("text").unwrap(), regions_to_text(&cold));

    // the panic is visible in the metrics taxonomy
    let stats = a.call("{\"op\":\"stats\"}").unwrap();
    let counted = stats
        .arr_field("counters")
        .unwrap()
        .iter()
        .any(|c| c.field("name").and_then(|v| v.as_str()) == Some("err.identify.stage-panic"));
    assert!(counted, "stage-panic must be counted under serve.err.*");

    failpoint::clear();
    a.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn panic_while_holding_the_session_lock_does_not_wedge_the_session() {
    let _guard = lock();
    failpoint::clear();
    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr).unwrap();
    client
        .call("{\"op\":\"load\",\"session\":\"s\",\"source\":\"compas\",\"rows\":250,\"seed\":4}")
        .unwrap();

    // the serve.locked.* sites fire after lock_session: the unwinding
    // request poisons the session mutex, and recovery must still serve
    failpoint::set("serve.locked.identify", Action::Panic, 1);
    let err = client
        .call("{\"op\":\"identify\",\"session\":\"s\"}")
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::StagePanic);
    let retry = client
        .call("{\"op\":\"identify\",\"session\":\"s\"}")
        .unwrap();
    let cold = identify(
        &synth::compas_n(250, 4),
        &IbsParams::default(),
        Algorithm::Optimized,
    );
    assert_eq!(retry.str_field("text").unwrap(), regions_to_text(&cold));

    // same through the mutating path: the batch rejected by the panic
    // applied nothing, and the session keeps accepting edits
    failpoint::set("serve.locked.ingest", Action::Panic, 1);
    let edit = "{\"op\":\"ingest\",\"session\":\"s\",\"edits\":[{\"kind\":\"flip\",\"row\":0}]}";
    let err = client.call(edit).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::StagePanic);
    let ok = client.call(edit).unwrap();
    assert_eq!(ok.u64_field("edits").unwrap(), 1, "only the retry applied");

    failpoint::clear();
    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn injected_transient_fault_reports_its_kind_and_retries_cleanly() {
    let _guard = lock();
    failpoint::clear();
    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr).unwrap();
    client
        .call("{\"op\":\"load\",\"session\":\"s\",\"source\":\"compas\",\"rows\":200,\"seed\":6}")
        .unwrap();
    failpoint::set("serve.req.ingest", Action::Err, 1);
    let edit =
        "{\"op\":\"ingest\",\"session\":\"s\",\"edits\":[{\"kind\":\"duplicate\",\"src\":0}]}";
    let err = client.call(edit).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Transient, "retryable by taxonomy");
    let ok = client.call(edit).unwrap();
    assert_eq!(ok.u64_field("rows").unwrap(), 201, "fault applied nothing");
    failpoint::clear();
    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

fn matrix_dir(site: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("remedy_fp_{}", site.replace('.', "_")));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn live_text(session: &Session) -> String {
    regions_to_text(&identify_in_index(
        &session.index,
        &IbsParams::default(),
        Algorithm::Optimized,
    ))
}

/// The crash-point matrix of the acceptance criteria: for every
/// durability fail-point, inject the fault mid-stream, "crash" (drop
/// the session with no shutdown step), recover, and demand the
/// recovered `identify` text be byte-identical to the reference the
/// acknowledgement protocol implies — batches refused at the WAL sites
/// never happened, batches whose *checkpoint* failed are still durable.
#[test]
fn crash_point_matrix_recovers_byte_identically_at_every_durability_step() {
    let _guard = lock();
    failpoint::clear();
    let obs = remedy_obs::Scope::disabled();
    let batch = |i: usize| {
        vec![
            RowEdit::FlipLabel { row: i },
            RowEdit::Duplicate { src: 2 * i },
        ]
    };
    for site in [
        "serve.wal.append",
        "serve.wal.fsync",
        "serve.snapshot.write",
        "serve.snapshot.rename",
    ] {
        let config = DurableConfig {
            root: matrix_dir(site),
            policy: DurablePolicy {
                snapshot_every: 2,
                wal_backlog: 1000,
            },
        };
        let mut mirror = synth::compas_n(300, 9);
        let mut session = Session::try_open(mirror.clone()).unwrap();
        session.durable = Some(Durable::create(&config, "m", &session, &obs).unwrap());
        // three clean batches: a rotated snapshot at epoch 2 plus a WAL
        // tail, so recovery crosses every layer
        for i in 0..3 {
            for edit in &batch(i) {
                mirror.apply_edit(edit);
            }
            session.ingest_with(&batch(i), &obs).unwrap();
        }
        // batch 4 trips the armed fault. At the WAL sites the batch is
        // refused before any state changes; at the snapshot sites the
        // batch is acknowledged (it is WAL-durable) and only the
        // periodic checkpoint fails.
        failpoint::set(site, Action::Err, 1);
        let result = session.ingest_with(&batch(3), &obs);
        let wal_site = site.starts_with("serve.wal");
        if wal_site {
            let err = result.expect_err("WAL faults must refuse the batch");
            assert_eq!(err.kind(), ErrorKind::Transient, "{site}: {err}");
            assert_eq!(session.epoch, 3, "{site}: refused batch must not apply");
        } else {
            result.unwrap_or_else(|e| panic!("{site}: checkpoint faults are absorbed: {e}"));
            for edit in &batch(3) {
                mirror.apply_edit(edit);
            }
            assert_eq!(session.epoch, 4);
        }
        failpoint::clear();
        let expected = live_text(&session);
        drop(session); // the crash: no flush, no shutdown

        let (mut recovered, _stats) = durable::recover_session(&config, "m").unwrap();
        assert_eq!(
            live_text(&recovered),
            expected,
            "{site}: recovery diverges from the acknowledged state"
        );
        let cold = identify(&mirror, &IbsParams::default(), Algorithm::Optimized);
        assert_eq!(
            live_text(&recovered),
            regions_to_text(&cold),
            "{site}: recovery diverges from a cold rebuild of the mirror"
        );
        // the faulted step leaves a fully writable session behind: the
        // next batch (a retry, at the WAL sites) lands normally
        for edit in &batch(7) {
            mirror.apply_edit(edit);
        }
        recovered.ingest_with(&batch(7), &obs).unwrap();
        let cold = identify(&mirror, &IbsParams::default(), Algorithm::Optimized);
        assert_eq!(live_text(&recovered), regions_to_text(&cold), "{site}");
    }
}

/// The WAL backlog bound: when checkpoints keep failing and the
/// un-checkpointed backlog reaches `wal_backlog`, ingest sheds with a
/// typed transient `overloaded` error instead of growing the log
/// forever — and drains normally once checkpoints succeed again.
#[test]
fn wal_backlog_bound_sheds_ingest_until_a_checkpoint_lands() {
    let _guard = lock();
    failpoint::clear();
    let recorder = remedy_obs::Recorder::enabled();
    let obs = recorder.scope("serve");
    let config = DurableConfig {
        root: matrix_dir("backlog"),
        policy: DurablePolicy {
            snapshot_every: 1000,
            wal_backlog: 3,
        },
    };
    let mut session = Session::try_open(synth::compas_n(200, 1)).unwrap();
    session.durable = Some(Durable::create(&config, "b", &session, &obs).unwrap());
    failpoint::set("serve.snapshot.write", Action::Err, 100);
    let edit = [RowEdit::FlipLabel { row: 0 }];
    for _ in 0..3 {
        session.ingest_with(&edit, &obs).unwrap();
    }
    // backlog is now 3 = the bound; the emergency checkpoint fails, so
    // the batch is shed and nothing applied
    let err = session.ingest_with(&edit, &obs).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Transient);
    assert!(err.message().contains("overloaded"), "{err}");
    assert_eq!(session.epoch, 3, "shed batches must not apply");
    let shed = recorder
        .snapshot()
        .counters
        .iter()
        .find(|(scope, name, _)| scope == "serve" && name == "shed.backlog")
        .map(|(_, _, v)| *v);
    assert_eq!(shed, Some(1));
    // once the disk heals, the same ingest checkpoints and drains
    failpoint::clear();
    session.ingest_with(&edit, &obs).unwrap();
    assert_eq!(session.epoch, 4);
    if let Some(durable) = &session.durable {
        assert_eq!(
            durable.snapshot_epoch(),
            3,
            "the emergency checkpoint covered the backlog"
        );
    }
    // and the whole episode is crash-safe
    let expected = live_text(&session);
    drop(session);
    let (recovered, _) = durable::recover_session(&config, "b").unwrap();
    assert_eq!(live_text(&recovered), expected);
}
