//! Fault-injection tests: a panicking or failing request is contained
//! to its own response; sibling connections, other sessions, and the
//! resident index all keep working.
//!
//! Run with `cargo test -p remedy-serve --features failpoints`.

#![cfg(feature = "failpoints")]

use remedy_core::persist::regions_to_text;
use remedy_core::{identify, Algorithm, IbsParams};
use remedy_dataset::synth;
use remedy_pipeline::failpoint::{self, Action};
use remedy_pipeline::ErrorKind;
use remedy_serve::{Client, ServeOptions, Server};

// The fail-point registry is process-global; tests that arm faults
// serialize on this lock so parallel test threads don't trip each
// other's faults.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn start_server() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeOptions::default()).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn panicking_request_leaves_sibling_connections_and_sessions_intact() {
    let _guard = lock();
    failpoint::clear();
    let (addr, handle) = start_server();
    let mut a = Client::connect(&addr).unwrap();
    let mut b = Client::connect(&addr).unwrap();
    a.call("{\"op\":\"load\",\"session\":\"s1\",\"source\":\"compas\",\"rows\":300,\"seed\":2}")
        .unwrap();
    b.call("{\"op\":\"load\",\"session\":\"s2\",\"source\":\"law\",\"rows\":300,\"seed\":2}")
        .unwrap();
    let baseline = b
        .call("{\"op\":\"identify\",\"session\":\"s2\"}")
        .unwrap()
        .str_field("text")
        .unwrap()
        .to_string();

    // one request panics at entry: a's next call gets a structured
    // stage-panic response on the same connection
    failpoint::set("serve.req.identify", Action::Panic, 1);
    let err = a
        .call("{\"op\":\"identify\",\"session\":\"s1\"}")
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::StagePanic);
    assert!(err.to_string().contains("injected panic"), "{err}");

    // the sibling connection and its resident session are untouched
    let again = b.call("{\"op\":\"identify\",\"session\":\"s2\"}").unwrap();
    assert_eq!(again.str_field("text").unwrap(), baseline);

    // so is the session the panicking request targeted: a retry answers
    // byte-identically to a cold build
    let retry = a.call("{\"op\":\"identify\",\"session\":\"s1\"}").unwrap();
    let cold = identify(
        &synth::compas_n(300, 2),
        &IbsParams::default(),
        Algorithm::Optimized,
    );
    assert_eq!(retry.str_field("text").unwrap(), regions_to_text(&cold));

    // the panic is visible in the metrics taxonomy
    let stats = a.call("{\"op\":\"stats\"}").unwrap();
    let counted = stats
        .arr_field("counters")
        .unwrap()
        .iter()
        .any(|c| c.field("name").and_then(|v| v.as_str()) == Some("err.identify.stage-panic"));
    assert!(counted, "stage-panic must be counted under serve.err.*");

    failpoint::clear();
    a.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn panic_while_holding_the_session_lock_does_not_wedge_the_session() {
    let _guard = lock();
    failpoint::clear();
    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr).unwrap();
    client
        .call("{\"op\":\"load\",\"session\":\"s\",\"source\":\"compas\",\"rows\":250,\"seed\":4}")
        .unwrap();

    // the serve.locked.* sites fire after lock_session: the unwinding
    // request poisons the session mutex, and recovery must still serve
    failpoint::set("serve.locked.identify", Action::Panic, 1);
    let err = client
        .call("{\"op\":\"identify\",\"session\":\"s\"}")
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::StagePanic);
    let retry = client
        .call("{\"op\":\"identify\",\"session\":\"s\"}")
        .unwrap();
    let cold = identify(
        &synth::compas_n(250, 4),
        &IbsParams::default(),
        Algorithm::Optimized,
    );
    assert_eq!(retry.str_field("text").unwrap(), regions_to_text(&cold));

    // same through the mutating path: the batch rejected by the panic
    // applied nothing, and the session keeps accepting edits
    failpoint::set("serve.locked.ingest", Action::Panic, 1);
    let edit = "{\"op\":\"ingest\",\"session\":\"s\",\"edits\":[{\"kind\":\"flip\",\"row\":0}]}";
    let err = client.call(edit).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::StagePanic);
    let ok = client.call(edit).unwrap();
    assert_eq!(ok.u64_field("edits").unwrap(), 1, "only the retry applied");

    failpoint::clear();
    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn injected_transient_fault_reports_its_kind_and_retries_cleanly() {
    let _guard = lock();
    failpoint::clear();
    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr).unwrap();
    client
        .call("{\"op\":\"load\",\"session\":\"s\",\"source\":\"compas\",\"rows\":200,\"seed\":6}")
        .unwrap();
    failpoint::set("serve.req.ingest", Action::Err, 1);
    let edit =
        "{\"op\":\"ingest\",\"session\":\"s\",\"edits\":[{\"kind\":\"duplicate\",\"src\":0}]}";
    let err = client.call(edit).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Transient, "retryable by taxonomy");
    let ok = client.call(edit).unwrap();
    assert_eq!(ok.u64_field("rows").unwrap(), 201, "fault applied nothing");
    failpoint::clear();
    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}
