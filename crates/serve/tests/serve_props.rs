//! End-to-end properties of the resident service.
//!
//! The headline promise: a server fed N streamed `ingest` batches
//! answers `identify` **byte-identically** to a cold batch identify on
//! the equivalent final dataset. The test drives a live server over TCP
//! with the same seeded random-edit generator the core counting
//! property tests use, mirroring every edit into a local dataset, then
//! compares the persisted-regions text from the wire against a
//! from-scratch run on the mirror.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remedy_core::persist::regions_to_text;
use remedy_core::{identify, remedy_with, Algorithm, IbsParams, Neighborhood, RemedyParams};
use remedy_core::{Scope as IbsScope, Technique};
use remedy_dataset::{synth, RowEdit};
use remedy_pipeline::json::Value;
use remedy_pipeline::ErrorKind;
use remedy_serve::{Client, ServeOptions, Server};

fn start_server() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeOptions::default()).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Same distribution as the core counting property harness
/// (`crates/core/tests/counting_props.rs`): duplicates, flips (twice as
/// likely), and small distinct removal sets.
fn random_edit(rng: &mut StdRng, len: usize) -> RowEdit {
    match rng.gen_range(0..4u32) {
        0 => RowEdit::Duplicate {
            src: rng.gen_range(0..len),
        },
        1 | 2 => RowEdit::FlipLabel {
            row: rng.gen_range(0..len),
        },
        _ => {
            let count = rng.gen_range(1..=len.min(8));
            let mut rows: Vec<usize> = (0..count).map(|_| rng.gen_range(0..len)).collect();
            rows.sort_unstable();
            rows.dedup();
            RowEdit::Remove { rows }
        }
    }
}

fn edit_json(edit: &RowEdit) -> String {
    match edit {
        RowEdit::Duplicate { src } => format!("{{\"kind\":\"duplicate\",\"src\":{src}}}"),
        RowEdit::FlipLabel { row } => format!("{{\"kind\":\"flip\",\"row\":{row}}}"),
        RowEdit::Remove { rows } => {
            let rows: Vec<String> = rows.iter().map(usize::to_string).collect();
            format!("{{\"kind\":\"remove\",\"rows\":[{}]}}", rows.join(","))
        }
    }
}

/// Finds one counter in a `stats` response.
fn counter(stats: &Value, scope: &str, name: &str) -> Option<u64> {
    stats.arr_field("counters").ok()?.iter().find_map(|c| {
        (c.field("scope")?.as_str()? == scope && c.field("name")?.as_str()? == name)
            .then(|| c.field("value")?.as_u64())?
    })
}

#[test]
fn streamed_ingest_identify_matches_cold_batch_byte_for_byte() {
    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr).unwrap();
    client
        .call(
            "{\"op\":\"load\",\"session\":\"live\",\"source\":\"compas\",\"rows\":400,\"seed\":11}",
        )
        .unwrap();

    // stream 100 random edits in batches of 10, mirroring each locally
    let mut mirror = synth::compas_n(400, 11);
    let mut rng = StdRng::seed_from_u64(0x5E57E);
    let mut pending = Vec::new();
    for _ in 0..100 {
        let edit = random_edit(&mut rng, mirror.len());
        pending.push(edit_json(&edit));
        mirror.apply_edit(&edit);
        if pending.len() == 10 {
            let response = client
                .call(&format!(
                    "{{\"op\":\"ingest\",\"session\":\"live\",\"edits\":[{}]}}",
                    pending.join(",")
                ))
                .unwrap();
            assert_eq!(response.u64_field("rows").unwrap() as usize, mirror.len());
            pending.clear();
        }
    }

    // the resident index answers exactly like a cold batch run, across
    // parameterizations and for both algorithms
    for (params, request) in [
        (
            IbsParams::default(),
            "{\"op\":\"identify\",\"session\":\"live\"}".to_string(),
        ),
        (
            IbsParams::builder()
                .tau_c(0.05)
                .min_size(10)
                .neighborhood(Neighborhood::Full)
                .scope(IbsScope::Leaf)
                .build()
                .unwrap(),
            "{\"op\":\"identify\",\"session\":\"live\",\"tau\":0.05,\"min_size\":10,\
             \"neighborhood\":\"full\",\"scope\":\"leaf\",\"algorithm\":\"naive\"}"
                .to_string(),
        ),
    ] {
        let algorithm = if request.contains("naive") {
            Algorithm::Naive
        } else {
            Algorithm::Optimized
        };
        let response = client.call(&request).unwrap();
        let cold = identify(&mirror, &params, algorithm);
        assert_eq!(
            response.str_field("text").unwrap(),
            regions_to_text(&cold),
            "live identify diverges from cold batch for {request}"
        );
        assert_eq!(response.u64_field("count").unwrap() as usize, cold.len());
    }

    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn load_from_binary_artifact_answers_like_a_builtin_session() {
    let dir = std::env::temp_dir().join("remedy_serve_artifact");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = synth::compas_n(400, 11);
    let path = dir.join("compas.bin");
    remedy_dataset::store::save(&data, &path, remedy_dataset::Format::Binary).unwrap();

    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr).unwrap();
    let response = client
        .call(&format!(
            "{{\"op\":\"load\",\"session\":\"art\",\"source\":{}}}",
            remedy_pipeline::json::json_str(&path.to_string_lossy())
        ))
        .unwrap();
    assert_eq!(response.u64_field("rows").unwrap() as usize, data.len());

    // the artifact-backed session (built from persisted packed keys)
    // answers byte-identically to a cold batch run over the same rows
    let response = client
        .call("{\"op\":\"identify\",\"session\":\"art\"}")
        .unwrap();
    let cold = identify(&data, &IbsParams::default(), Algorithm::Optimized);
    assert_eq!(response.str_field("text").unwrap(), regions_to_text(&cold));

    // and it accepts ingest like any other session
    let response = client
        .call("{\"op\":\"ingest\",\"session\":\"art\",\"edits\":[{\"kind\":\"flip\",\"row\":0}]}")
        .unwrap();
    assert_eq!(response.u64_field("rows").unwrap() as usize, data.len());

    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn errors_are_structured_and_the_connection_survives() {
    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr).unwrap();

    // an unparseable line is answered (invalid-plan), not dropped
    let raw = client.request_line("this is not json").unwrap();
    assert!(
        raw.contains("\"ok\":false") && raw.contains("invalid-plan"),
        "{raw}"
    );
    let err = client
        .call("{\"op\":\"identify\",\"session\":\"ghost\"}")
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidPlan);
    assert!(err.message().contains("unknown session"), "{err}");

    // a bad edit rejects the whole batch; the session stays pristine
    client
        .call("{\"op\":\"load\",\"session\":\"s\",\"source\":\"compas\",\"rows\":200,\"seed\":3}")
        .unwrap();
    let err = client
        .call(
            "{\"op\":\"ingest\",\"session\":\"s\",\"edits\":[{\"kind\":\"flip\",\"row\":0},\
             {\"kind\":\"duplicate\",\"src\":9999}]}",
        )
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidPlan);
    let response = client
        .call("{\"op\":\"identify\",\"session\":\"s\",\"id\":\"after\"}")
        .unwrap();
    assert_eq!(response.str_field("id").unwrap(), "after");
    let cold = identify(
        &synth::compas_n(200, 3),
        &IbsParams::default(),
        Algorithm::Optimized,
    );
    assert_eq!(response.str_field("text").unwrap(), regions_to_text(&cold));

    // stats reports the per-request metrics, including the error taxonomy
    let stats = client.call("{\"op\":\"stats\"}").unwrap();
    assert!(counter(&stats, "serve", "req.identify").unwrap() >= 2);
    assert_eq!(counter(&stats, "serve", "req.load"), Some(1));
    assert_eq!(counter(&stats, "serve", "err.ingest.invalid-plan"), Some(1));
    assert_eq!(
        counter(&stats, "serve", "err.identify.invalid-plan"),
        Some(1)
    );
    let sessions = stats.arr_field("sessions").unwrap();
    assert_eq!(sessions.len(), 1);
    assert_eq!(sessions[0].str_field("name").unwrap(), "s");
    assert_eq!(sessions[0].u64_field("rows").unwrap(), 200);

    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn remedy_returns_the_edit_script_and_apply_replaces_the_session() {
    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr).unwrap();
    client
        .call("{\"op\":\"load\",\"session\":\"r\",\"source\":\"compas\",\"rows\":600,\"seed\":5}")
        .unwrap();

    // without apply, the response carries the edit script and the
    // resident dataset is untouched
    let mirror = synth::compas_n(600, 5);
    let params = RemedyParams::builder()
        .technique(Technique::Undersampling)
        .seed(5)
        .build()
        .unwrap();
    let expected = remedy_with(&mirror, &params, &remedy_obs::Scope::disabled());
    let response = client
        .call("{\"op\":\"remedy\",\"session\":\"r\",\"technique\":\"us\",\"seed\":5}")
        .unwrap();
    assert_eq!(response.u64_field("rows_before").unwrap(), 600);
    assert_eq!(
        response.u64_field("rows_after").unwrap() as usize,
        expected.dataset.len()
    );
    let updates = response.arr_field("updates").unwrap();
    assert_eq!(updates.len(), expected.updates.len());
    for (wire, update) in updates.iter().zip(&expected.updates) {
        assert_eq!(
            wire.str_field("pattern").unwrap(),
            update.pattern.display(mirror.schema()).to_string()
        );
        assert_eq!(wire.f64_field("ratio_before").unwrap(), update.ratio_before);
    }
    let still = client
        .call("{\"op\":\"identify\",\"session\":\"r\"}")
        .unwrap();
    let cold = identify(&mirror, &IbsParams::default(), Algorithm::Optimized);
    assert_eq!(still.str_field("text").unwrap(), regions_to_text(&cold));

    // with apply, the session is replaced and identify answers over the
    // remedied rows
    client
        .call(
            "{\"op\":\"remedy\",\"session\":\"r\",\"technique\":\"us\",\"seed\":5,\"apply\":true}",
        )
        .unwrap();
    let after = client
        .call("{\"op\":\"identify\",\"session\":\"r\"}")
        .unwrap();
    let cold = identify(
        &expected.dataset,
        &IbsParams::default(),
        Algorithm::Optimized,
    );
    assert_eq!(after.str_field("text").unwrap(), regions_to_text(&cold));

    // audit reports model metrics over the resident rows
    let audit = client
        .call("{\"op\":\"audit\",\"session\":\"r\",\"model\":\"dt\",\"stat\":\"fpr\"}")
        .unwrap();
    let accuracy = audit.f64_field("accuracy").unwrap();
    assert!((0.0..=1.0).contains(&accuracy), "accuracy {accuracy}");
    assert!(audit.u64_field("unfair_subgroups").is_ok());

    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn sessions_serve_concurrent_connections_independently() {
    let (addr, handle) = start_server();
    let mut a = Client::connect(&addr).unwrap();
    a.call("{\"op\":\"load\",\"session\":\"shared\",\"source\":\"law\",\"rows\":300,\"seed\":9}")
        .unwrap();
    let expected = {
        let cold = identify(
            &synth::law_school_n(300, 9),
            &IbsParams::default(),
            Algorithm::Optimized,
        );
        regions_to_text(&cold)
    };
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                for _ in 0..5 {
                    let response = client
                        .call("{\"op\":\"identify\",\"session\":\"shared\"}")
                        .unwrap();
                    assert_eq!(response.str_field("text").unwrap(), expected);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    let stats = a.call("{\"op\":\"stats\"}").unwrap();
    assert_eq!(counter(&stats, "serve", "req.identify"), Some(20));
    a.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn pruned_identify_round_trips_byte_identically() {
    let (addr, handle) = start_server();
    let mut client = Client::connect(&addr).unwrap();

    // a dense-indexed session answers pruned requests identically to the
    // dense ones — and to a cold batch run
    client
        .call("{\"op\":\"load\",\"session\":\"c\",\"source\":\"compas\",\"rows\":500,\"seed\":5}")
        .unwrap();
    let mirror = synth::compas_n(500, 5);
    let dense = client
        .call("{\"op\":\"identify\",\"session\":\"c\",\"tau\":0.05,\"min_size\":10}")
        .unwrap();
    let pruned = client
        .call(
            "{\"op\":\"identify\",\"session\":\"c\",\"tau\":0.05,\"min_size\":10,\"pruned\":true}",
        )
        .unwrap();
    let params = IbsParams::builder()
        .tau_c(0.05)
        .min_size(10)
        .build()
        .unwrap();
    let cold = regions_to_text(&identify(&mirror, &params, Algorithm::Optimized));
    assert_eq!(dense.str_field("text").unwrap(), cold);
    assert_eq!(pruned.str_field("text").unwrap(), cold);

    // a session past the dense arity ceiling opens with a sparse index:
    // pruned requests are served, dense ones are typed invalid-plan errors
    client
        .call(
            "{\"op\":\"load\",\"session\":\"w\",\"source\":\"wide\",\"rows\":2000,\
             \"arity\":20,\"seed\":7}",
        )
        .unwrap();
    let wide = synth::wide_n(2_000, 20, 7);
    let pruned_params = IbsParams::builder()
        .enumeration(remedy_core::Enumeration::Pruned)
        .build()
        .unwrap();
    let cold_wide = regions_to_text(
        &remedy_core::try_identify_over(
            &wide,
            &wide.schema().protected_indices(),
            &pruned_params,
            Algorithm::Optimized,
        )
        .unwrap(),
    );
    let live = client
        .call("{\"op\":\"identify\",\"session\":\"w\",\"pruned\":true}")
        .unwrap();
    assert_eq!(live.str_field("text").unwrap(), cold_wide);
    let err = client
        .call("{\"op\":\"identify\",\"session\":\"w\"}")
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidPlan);
    assert!(err.message().contains("dense lattice unavailable"), "{err}");

    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
}
