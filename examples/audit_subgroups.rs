//! Audit a trained classifier for intersectional subgroup unfairness.
//!
//! ```text
//! cargo run --example audit_subgroups --release [-- <adult|compas|law>]
//! ```
//!
//! Reproduces the paper's validation workflow (§V-B1): train a model,
//! enumerate every intersectional subgroup of the protected attributes
//! with the DivExplorer-style explorer, and cross-reference the unfair
//! ones against the Implicit Biased Set found in the training data — the
//! connection at the heart of Hypothesis 1.

use remedy::classifiers::{train, ModelKind};
use remedy::core::{identify, Algorithm, IbsParams};
use remedy::dataset::split::train_test_split;
use remedy::dataset::synth;
use remedy::fairness::{Explorer, Statistic};

fn main() {
    let data = match std::env::args().nth(1).as_deref() {
        Some("adult") => synth::adult(7),
        Some("law") => synth::law_school(7),
        _ => synth::compas(7),
    };
    let (train_set, test_set) = train_test_split(&data, 0.7, 7).unwrap();

    // the model under audit
    let model = train(ModelKind::RandomForest, &train_set, 7);
    let predictions = model.predict(&test_set);

    // every significant unfair subgroup (support ≥ 5%, Welch-t, τ_d = 0.1)
    let explorer = Explorer {
        min_support: 0.05,
        min_size: 30,
        alpha: 0.05,
        max_level: None,
        columns: None,
    };
    let unfair = explorer.unfair_subgroups(&test_set, &predictions, Statistic::Fpr, 0.1);

    // the IBS of the training data
    let ibs = identify(&train_set, &IbsParams::default(), Algorithm::Optimized);

    println!(
        "{} unfair subgroups (γ = FPR), {} biased regions in training data\n",
        unfair.len(),
        ibs.len()
    );
    println!(
        "{:<52} {:>10} {:>8}  IBS?",
        "subgroup", "divergence", "FPR_g"
    );
    for report in unfair.iter().take(15) {
        let in_ibs = ibs.iter().any(|r| r.pattern == report.pattern);
        let dominates = ibs.iter().any(|r| report.pattern.dominates(&r.pattern));
        let mark = if in_ibs {
            "in IBS"
        } else if dominates {
            "dominates IBS"
        } else {
            "-"
        };
        println!(
            "{:<52} {:>10.3} {:>8.3}  {}",
            report.pattern.display(test_set.schema()).to_string(),
            report.divergence,
            report.gamma,
            mark
        );
    }
    if unfair.len() > 15 {
        println!("… and {} more", unfair.len() - 15);
    }
}
