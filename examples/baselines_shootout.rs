//! Compare Remedy against the five mitigation baselines on one dataset.
//!
//! ```text
//! cargo run --example baselines_shootout --release [-- <adult|compas|law>]
//! ```
//!
//! A smaller-scale version of Table III: each method mitigates the
//! training data (or, for GerryFair, trains fairly in-processing), a
//! logistic-regression model is fit, and the test set is scored on
//! GerryFair's fairness-violation metric plus accuracy.

use remedy::baselines::{
    coverage_augment, fair_smote, fairbalance_weights, reweight, CoverageParams, FairSmoteParams,
    GerryFair,
};
use remedy::classifiers::{accuracy, LogisticRegression, LogisticRegressionParams, Model};
use remedy::core::{remedy as remedy_data, RemedyParams};
use remedy::dataset::split::train_test_split;
use remedy::dataset::synth;
use remedy::fairness::{fairness_violation, Statistic};

fn main() {
    let data = match std::env::args().nth(1).as_deref() {
        Some("adult") => synth::adult_n(10_000, 3),
        Some("law") => synth::law_school(3),
        _ => synth::compas(3),
    };
    let (train_set, test_set) = train_test_split(&data, 0.7, 3).unwrap();
    println!(
        "{} train / {} test rows, |X| = {}\n",
        train_set.len(),
        test_set.len(),
        train_set.schema().protected_len()
    );
    println!(
        "{:<14} {:>18} {:>10}",
        "method", "fairness violation", "accuracy"
    );

    let lg = |d: &remedy::dataset::Dataset| {
        LogisticRegression::fit(d, &LogisticRegressionParams::default())
    };
    let score = |name: &str, model: &dyn Model| {
        let predictions = model.predict(&test_set);
        println!(
            "{:<14} {:>18.4} {:>10.3}",
            name,
            fairness_violation(&test_set, &predictions, Statistic::Fpr, 30),
            accuracy(&predictions, test_set.labels())
        );
    };

    score("Original", &lg(&train_set));
    score(
        "Remedy",
        &lg(&remedy_data(&train_set, &RemedyParams::default()).dataset),
    );
    score(
        "Coverage",
        &lg(&coverage_augment(&train_set, &CoverageParams::default()).0),
    );
    score("Reweighting", &lg(&reweight(&train_set)));
    score("FairBalance", &lg(&fairbalance_weights(&train_set)));
    score(
        "Fair-SMOTE",
        &lg(&fair_smote(
            &train_set,
            &FairSmoteParams {
                candidate_cap: 256,
                ..FairSmoteParams::default()
            },
        )),
    );
    score("GerryFair", &GerryFair::default().fit(&train_set));
}
