//! Run the remedy pipeline on your own CSV file.
//!
//! ```text
//! cargo run --example csv_pipeline --release -- data.csv label_col prot1,prot2
//! ```
//!
//! With no arguments, the example writes a small demonstration CSV to a
//! temp directory and runs on that, so it always works out of the box.
//! The pipeline: load + bucketize → identify IBS → remedy (preferential
//! sampling) → write the remedied CSV next to the input.

use remedy::core::{identify, remedy as remedy_data, Algorithm, IbsParams, RemedyParams};
use remedy::dataset::csv::{self, LoadOptions, RawTable};
use remedy::dataset::synth;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, label, protected) = if args.len() >= 3 {
        (
            std::path::PathBuf::from(&args[0]),
            args[1].clone(),
            args[2]
                .split(',')
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
    } else {
        // demo mode: serialize the COMPAS stand-in to CSV first
        let demo = std::env::temp_dir().join("remedy_demo_compas.csv");
        csv::write_path(&synth::compas_n(3_000, 11), &demo).expect("write demo csv");
        println!("(demo mode: using generated {})\n", demo.display());
        (
            demo,
            "recid".to_string(),
            vec!["age".to_string(), "race".to_string(), "sex".to_string()],
        )
    };

    // 1. load with schema inference (numeric columns are bucketized)
    let table = RawTable::from_path(&path).expect("readable csv");
    let protected_refs: Vec<&str> = protected.iter().map(String::as_str).collect();
    let opts = LoadOptions::new(&label).protected(&protected_refs);
    let data = table.to_dataset(&opts).expect("well-formed csv");
    println!(
        "loaded {} rows × {} attributes ({} protected) from {}",
        data.len(),
        data.schema().len(),
        data.schema().protected_len(),
        path.display()
    );

    // 2. identify biased regions
    let ibs = identify(&data, &IbsParams::default(), Algorithm::Optimized);
    println!("found {} biased regions; worst five:", ibs.len());
    let mut by_gap = ibs.clone();
    by_gap.sort_by(|a, b| b.gap().partial_cmp(&a.gap()).unwrap());
    for region in by_gap.iter().take(5) {
        println!(
            "  {}  |r| = {}, ratio_r = {:.2}, ratio_rn = {:.2}",
            region.pattern.display(data.schema()),
            region.counts.total(),
            region.ratio,
            region.neighbor_ratio
        );
    }

    // 3. remedy and write the result
    let outcome = remedy_data(&data, &RemedyParams::default());
    let out_path = path.with_extension("remedied.csv");
    csv::write_path(&outcome.dataset, &out_path).expect("writable output");
    println!(
        "\nremedied {} regions; {} → {} rows; wrote {}",
        outcome.updates.len(),
        data.len(),
        outcome.dataset.len(),
        out_path.display()
    );
}
