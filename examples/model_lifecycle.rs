//! Full model lifecycle: profile data → remedy → train → persist →
//! reload → audit.
//!
//! ```text
//! cargo run --example model_lifecycle --release
//! ```
//!
//! Demonstrates the production surface around the core pipeline: dataset
//! profiling, model persistence (versioned text format), the Markdown
//! audit report, and the classical two-group fairness metrics.

use remedy::classifiers::persist;
use remedy::classifiers::{DecisionTree, DecisionTreeParams, Model};
use remedy::core::{remedy as remedy_data, RemedyParams};
use remedy::dataset::split::train_test_split;
use remedy::dataset::{profile, synth};
use remedy::fairness::group::group_fairness;
use remedy::fairness::{audit, AuditConfig};

fn main() {
    // 1. inspect the data
    let data = synth::compas(42);
    let prof = profile(&data);
    println!("=== dataset profile (excerpt) ===");
    for attr in prof.attributes.iter().filter(|a| a.protected) {
        println!(
            "{:<6} entropy {:.2}, label association V = {:.3}",
            attr.name, attr.entropy, attr.cramers_v
        );
    }

    // 2. remedy the training split and train
    let (train_set, test_set) = train_test_split(&data, 0.7, 42).unwrap();
    let remedied = remedy_data(&train_set, &RemedyParams::default()).dataset;
    let model = DecisionTree::fit(&remedied, &DecisionTreeParams::default());

    // 3. persist and reload
    let path = std::env::temp_dir().join("remedy_lifecycle_model.txt");
    persist::save_to_path(&persist::tree_to_text(&model), &path).unwrap();
    let loaded = persist::load_from_path(&path).unwrap();
    println!(
        "\nsaved and reloaded a {} from {}",
        loaded.kind(),
        path.display()
    );

    // 4. audit the reloaded model
    let predictions = loaded.predict(&test_set);
    let report = audit(&test_set, &predictions, &AuditConfig::default());
    println!("\n{report}");

    // 5. classical two-group metrics per protected attribute
    println!("=== classical group metrics ===");
    for name in ["race", "sex", "age"] {
        let g = group_fairness(&test_set, &predictions, name).unwrap();
        println!(
            "{name:<5} demographic parity Δ {:.3} · disparate impact {:.2} ({}) · eq. odds Δ {:.3}",
            g.demographic_parity_difference,
            g.disparate_impact_ratio,
            if g.passes_four_fifths() {
                "passes 80% rule"
            } else {
                "FAILS 80% rule"
            },
            g.equalized_odds_difference
        );
    }
}
