//! Quickstart: identify Implicit Biased Sets in a dataset and remedy them.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! Walks the full pipeline on the ProPublica/COMPAS stand-in:
//! 1. load data and split 70/30,
//! 2. identify the IBS (Algorithm 1),
//! 3. remedy the training set with preferential sampling (Algorithm 2),
//! 4. train a decision tree before/after and compare subgroup fairness.

use remedy::classifiers::{accuracy, train, ModelKind};
use remedy::core::{identify, remedy as remedy_data, Algorithm, IbsParams, RemedyParams};
use remedy::dataset::split::train_test_split;
use remedy::dataset::synth;
use remedy::fairness::{fairness_index, FairnessIndexParams, Statistic};

fn main() {
    // 1. data: 6,172 defendants, protected attributes {age, race, sex}
    let data = synth::compas(42);
    let (train_set, test_set) = train_test_split(&data, 0.7, 42).unwrap();
    println!(
        "ProPublica stand-in: {} train / {} test rows, |X| = {}",
        train_set.len(),
        test_set.len(),
        train_set.schema().protected_len()
    );

    // 2. identify biased regions: |ratio_r − ratio_rn| > τ_c, |r| > 30
    let params = IbsParams::default(); // τ_c = 0.1, T = 1, k = 30
    let ibs = identify(&train_set, &params, Algorithm::Optimized);
    println!(
        "\nIBS: {} biased regions. The five largest gaps:",
        ibs.len()
    );
    let mut by_gap = ibs.clone();
    by_gap.sort_by(|a, b| b.gap().partial_cmp(&a.gap()).unwrap());
    for region in by_gap.iter().take(5) {
        println!(
            "  {}  ratio_r = {:.2}, ratio_rn = {:.2}",
            region.pattern.display(train_set.schema()),
            region.ratio,
            region.neighbor_ratio
        );
    }

    // 3. remedy the training data (preferential sampling)
    let outcome = remedy_data(&train_set, &RemedyParams::default());
    println!(
        "\nRemedy updated {} regions ({} → {} rows)",
        outcome.updates.len(),
        train_set.len(),
        outcome.dataset.len()
    );

    // 4. train a decision tree before and after; compare subgroup fairness
    let fi = FairnessIndexParams::default();
    let before = train(ModelKind::DecisionTree, &train_set, 42);
    let after = train(ModelKind::DecisionTree, &outcome.dataset, 42);
    let preds_before = before.predict(&test_set);
    let preds_after = after.predict(&test_set);
    println!("\n                      before    after");
    println!(
        "fairness index (FPR)  {:.3}     {:.3}",
        fairness_index(&test_set, &preds_before, Statistic::Fpr, &fi),
        fairness_index(&test_set, &preds_after, Statistic::Fpr, &fi),
    );
    println!(
        "fairness index (FNR)  {:.3}     {:.3}",
        fairness_index(&test_set, &preds_before, Statistic::Fnr, &fi),
        fairness_index(&test_set, &preds_after, Statistic::Fnr, &fi),
    );
    println!(
        "accuracy              {:.3}     {:.3}",
        accuracy(&preds_before, test_set.labels()),
        accuracy(&preds_after, test_set.labels()),
    );
}
