#!/usr/bin/env bash
# Runs the Criterion benches (identify, remedy, pipeline, serve, persist) and
# records the median time of every benchmark into BENCH_core.json, tagged with
# the git revision and UTC date. The persist bench contributes the
# dataset_cold_load_ms comparison (text parse vs binary columnar decode of a
# 1M-row synthetic); the pipeline bench contributes pipeline_sharded_ms, the
# critical-path scaling curve of sharded counting over 1M rows at 1/2/4/8
# shards with its measured speedup_at_8. Extra arguments are forwarded to
# `cargo bench`
# (e.g. `scripts/bench.sh remedy_large` to filter).
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_core.json
log=$(mktemp)
trap 'rm -f "$log"' EXIT

for bench in identify remedy pipeline serve persist; do
    cargo bench -p remedy-bench --bench "$bench" -- "$@" | tee -a "$log"
done

rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# The vendored criterion shim prints one line per benchmark:
#   <id>  time: [<min> <u> <median> <u> <max> <u>]
awk -v rev="$rev" -v date="$date" '
    /time: \[/ {
        id = $1
        match($0, /\[[^]]*\]/)
        split(substr($0, RSTART + 1, RLENGTH - 2), t, /[[:space:]]+/)
        ns = t[3] + 0
        unit = t[4]
        if (unit == "µs") ns *= 1e3
        else if (unit == "ms") ns *= 1e6
        else if (unit == "s") ns *= 1e9
        ids[n++] = id
        medians[id] = ns
    }
    END {
        if (n == 0) {
            print "no benchmark output parsed" > "/dev/stderr"
            exit 1
        }
        printf "{\n  \"git_rev\": \"%s\",\n  \"date\": \"%s\",\n  \"median_ns\": {\n", rev, date
        for (i = 0; i < n; i++) {
            id = ids[i]
            printf "    \"%s\": %.0f%s\n", id, medians[id], (i < n - 1 ? "," : "")
        }
        printf "  }"
        text = medians["persist/cold_load_text_1m"]
        binary = medians["persist/cold_load_binary_1m"]
        if (text > 0 && binary > 0) {
            printf ",\n  \"dataset_cold_load_ms\": {\n"
            printf "    \"rows\": 1000000,\n"
            printf "    \"text\": %.3f,\n", text / 1e6
            printf "    \"binary\": %.3f,\n", binary / 1e6
            printf "    \"speedup\": %.1f\n", text / binary
            printf "  }"
        }
        s1 = medians["pipeline/sharded/1"]
        s8 = medians["pipeline/sharded/8"]
        if (s1 > 0 && s8 > 0) {
            printf ",\n  \"pipeline_sharded_ms\": {\n"
            printf "    \"rows\": 1000000,\n"
            printf "    \"shards_1\": %.3f,\n", s1 / 1e6
            printf "    \"shards_2\": %.3f,\n", medians["pipeline/sharded/2"] / 1e6
            printf "    \"shards_4\": %.3f,\n", medians["pipeline/sharded/4"] / 1e6
            printf "    \"shards_8\": %.3f,\n", s8 / 1e6
            printf "    \"speedup_at_8\": %.1f\n", s1 / s8
            printf "  }"
        }
        recover = medians["serve/serve_recover_1m"]
        if (recover > 0) {
            printf ",\n  \"serve_recover_ms\": {\n"
            printf "    \"rows\": 1000000,\n"
            printf "    \"wal_batches\": 64,\n"
            printf "    \"median\": %.3f\n", recover / 1e6
            printf "  }"
        }
        printf "\n}\n"
    }
' "$log" > "$out"

echo "wrote $out ($(grep -c '":' "$out") lines)"
