#!/usr/bin/env bash
# Full verification gate: release build, the whole test suite, lints,
# formatting, doc warnings, and the ordered-radius ablation plan (cold
# run, then a warm run that must replay from cache). Run before sending
# a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace   # includes the remedy CLI binary
cargo test -q --workspace
# the deterministic fault-injection suites (retry, panic containment,
# kill-then-resume) only compile under the failpoints feature
cargo test -q -p remedy-pipeline --features failpoints
cargo test -q -p remedy-cli --features failpoints
cargo test -q -p remedy-serve --features failpoints
# counting-engine property suite (edit interleavings vs rebuild, remedy
# byte-parity with the scan baseline) ...
cargo test -q -p remedy-core --test counting_props
# ... and the release-mode timing smoke check: the incremental remedy
# must not be slower than the per-node scan it replaced
cargo test -q --release -p remedy-core --test counting_props -- --ignored
# support-pruned enumeration: byte-parity with dense in release mode
# (where the debug overflow checks that caught the packed-key wrap are
# off), plus the sub-second p=24 identify the dense lattice refuses
cargo test -q --release -p remedy-core --test pruned_props
cargo test -q --release -p remedy-core --test pruned_props -- --ignored
cargo clippy --workspace -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# the Fig. 8 ordered ablation must run end to end, and a second run must
# be served entirely from the artifact cache
cache="$(mktemp -d)"
trap 'rm -rf "$cache"' EXIT
target/release/remedy pipeline examples/plans/ordered_ablation.plan \
    --cache "$cache" >/dev/null
warm="$(target/release/remedy pipeline examples/plans/ordered_ablation.plan \
    --cache "$cache")"
if printf '%s\n' "$warm" | grep -q '^computed'; then
    echo "verify: FAIL — warm ablation re-run recomputed a stage:" >&2
    printf '%s\n' "$warm" >&2
    exit 1
fi
target/release/remedy cache gc --cache "$cache" --max-bytes 0 >/dev/null

# persistence: populate a cache from an exact-text source, convert the
# source file to binary columnar in place, and require the warm run to
# replay every stage — a conversion must never invalidate a cache
conv="$(mktemp -d)"
trap 'rm -rf "$cache" "$conv"' EXIT
target/release/remedy generate compas --rows 800 --out "$conv/data.csv" >/dev/null
target/release/remedy convert "$conv/data.csv" "$conv/data.remedy" \
    --format text --label recid --protected age,race,sex >/dev/null
cat > "$conv/plan.txt" <<EOF
dataset $conv/data.remedy
seed 7
label recid
protected age,race,sex
branch base technique=none model=dt
branch ps technique=ps model=dt
EOF
target/release/remedy pipeline "$conv/plan.txt" --cache "$conv/cache" >/dev/null
target/release/remedy convert "$conv/data.remedy" "$conv/data.remedy" \
    --format binary >/dev/null
head -c 18 "$conv/data.remedy" | grep -q 'remedy-columnar' || {
    echo "verify: FAIL — convert did not write a columnar artifact" >&2
    exit 1
}
warm="$(target/release/remedy pipeline "$conv/plan.txt" --cache "$conv/cache")"
if printf '%s\n' "$warm" | grep -q '^computed'; then
    echo "verify: FAIL — binary-converted source recomputed a cached stage:" >&2
    printf '%s\n' "$warm" >&2
    exit 1
fi

# binary cold-load smoke past the dense ceiling: a wide dataset written
# as a columnar artifact identifies straight off the file (the artifact
# carries its schema, so no --label/--protected), pruned only
target/release/remedy generate wide --rows 5000 --arity 20 \
    --format binary --out "$conv/wide.bin" >/dev/null
target/release/remedy identify "$conv/wide.bin" --pruned >/dev/null
if target/release/remedy identify "$conv/wide.bin" 2>/dev/null; then
    echo "verify: FAIL — dense identify accepted a 20-wide artifact" >&2
    exit 1
fi

# past the dense arity ceiling (16) only the pruned enumeration answers:
# p=20 identify must succeed with --pruned and refuse without it
target/release/remedy identify wide --arity 20 --rows 5000 --pruned >/dev/null
if target/release/remedy identify wide --arity 20 --rows 5000 2>/dev/null; then
    echo "verify: FAIL — dense identify accepted 20 protected attributes" >&2
    exit 1
fi
# pruned-parity smoke on a dense-servable dataset: both modes must print
# identical region reports
dense_out="$(target/release/remedy identify compas --tau 0.05 --min-size 20)"
pruned_out="$(target/release/remedy identify compas --tau 0.05 --min-size 20 --pruned)"
if [ "$dense_out" != "$pruned_out" ]; then
    echo "verify: FAIL — pruned identify diverged from dense output" >&2
    exit 1
fi

# corrupt-then-recover: flip one byte in a cached artifact; the next run
# must quarantine the damaged entry and recompute, still exiting 0
cache2="$(mktemp -d)"
trap 'rm -rf "$cache" "$cache2"' EXIT
target/release/remedy pipeline examples/plans/ordered_ablation.plan \
    --cache "$cache2" >/dev/null
artifact="$(find "$cache2" -mindepth 2 -name artifact | head -n1)"
printf 'x' >>"$artifact"
target/release/remedy pipeline examples/plans/ordered_ablation.plan \
    --cache "$cache2" >/dev/null
if [ -z "$(ls -A "$cache2/quarantine" 2>/dev/null)" ]; then
    echo "verify: FAIL — corrupted cache entry was not quarantined" >&2
    exit 1
fi

# serve smoke test: start the daemon on an ephemeral port, drive one
# load/ingest/identify/shutdown session through `remedy client`, and
# require a clean exit from both processes
serve_log="$(mktemp)"
trap 'rm -rf "$cache" "$cache2" "$serve_log"' EXIT
target/release/remedy serve --addr 127.0.0.1:0 >"$serve_log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^remedy-serve listening on //p' "$serve_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "verify: FAIL — remedy serve never reported its address" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
target/release/remedy client "$addr" \
    '{"op":"load","session":"smoke","source":"compas","rows":300,"seed":7}' \
    '{"op":"ingest","session":"smoke","edits":[{"kind":"flip","row":0}]}' \
    '{"op":"identify","session":"smoke"}' \
    '{"op":"shutdown"}' >/dev/null
if ! wait "$serve_pid"; then
    echo "verify: FAIL — remedy serve exited non-zero after shutdown" >&2
    exit 1
fi

# crash-recovery smoke: stream edits into a durable (--data-dir) daemon,
# SIGKILL it with no shutdown step, restart it over the same directory,
# and require the recovered identify output to be byte-identical to an
# in-memory daemon replaying the same load + edit history from scratch
ddir="$(mktemp -d)"
trap 'rm -rf "$cache" "$cache2" "$serve_log" "$ddir"' EXIT
serve_addr() { # <logfile> — poll for the printed ephemeral address
    local log="$1" addr="" i
    for i in $(seq 1 100); do
        addr="$(sed -n 's/^remedy-serve listening on //p' "$log")"
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        sleep 0.1
    done
    return 1
}
crash_history=(
    '{"op":"load","session":"crash","source":"compas","rows":300,"seed":7}'
    '{"op":"ingest","session":"crash","edits":[{"kind":"flip","row":0},{"kind":"duplicate","src":1}]}'
    '{"op":"ingest","session":"crash","edits":[{"kind":"remove","rows":[2,3]}]}'
    '{"op":"ingest","session":"crash","edits":[{"kind":"flip","row":5}]}'
)
# --snapshot-every 2 puts a rotated snapshot at epoch 2 and leaves the
# third batch in the WAL tail, so recovery exercises both layers
target/release/remedy serve --addr 127.0.0.1:0 --data-dir "$ddir/sessions" \
    --snapshot-every 2 >"$ddir/serve1.log" &
crash_pid=$!
addr="$(serve_addr "$ddir/serve1.log")" || {
    echo "verify: FAIL — durable serve never reported its address" >&2
    exit 1
}
target/release/remedy client "$addr" "${crash_history[@]}" >/dev/null
kill -9 "$crash_pid"
wait "$crash_pid" 2>/dev/null || true
target/release/remedy serve --addr 127.0.0.1:0 --data-dir "$ddir/sessions" \
    >"$ddir/serve2.log" &
recover_pid=$!
addr="$(serve_addr "$ddir/serve2.log")" || {
    echo "verify: FAIL — recovering serve never reported its address" >&2
    exit 1
}
recovered="$(target/release/remedy client "$addr" \
    '{"op":"identify","session":"crash"}')"
target/release/remedy client "$addr" '{"op":"shutdown"}' >/dev/null
if ! wait "$recover_pid"; then
    echo "verify: FAIL — recovering serve exited non-zero after shutdown" >&2
    exit 1
fi
target/release/remedy serve --addr 127.0.0.1:0 >"$ddir/serve3.log" &
ref_pid=$!
addr="$(serve_addr "$ddir/serve3.log")" || {
    echo "verify: FAIL — reference serve never reported its address" >&2
    exit 1
}
target/release/remedy client "$addr" "${crash_history[@]}" >/dev/null
reference="$(target/release/remedy client "$addr" \
    '{"op":"identify","session":"crash"}')"
target/release/remedy client "$addr" '{"op":"shutdown"}' >/dev/null
wait "$ref_pid" || true
if [ "$recovered" != "$reference" ]; then
    echo "verify: FAIL — recovered identify diverged from the cold rebuild" >&2
    printf 'recovered: %s\nreference: %s\n' "$recovered" "$reference" >&2
    exit 1
fi

# shard parity: the same adult-10k plan run --shards 4 (real
# pipeline-worker subprocesses) and --shards 1 must store the identify
# artifact under the same key with byte-identical text, and warm reruns
# of both caches must replay every stage
shdir="$(mktemp -d)"
trap 'rm -rf "$cache" "$cache2" "$serve_log" "$ddir" "$shdir"' EXIT
cat > "$shdir/plan.txt" <<EOF
dataset adult
rows 10000
seed 7
tau 0.1
min-size 30
branch base technique=none model=dt
EOF
target/release/remedy pipeline "$shdir/plan.txt" --cache "$shdir/c1" \
    --shards 1 >/dev/null
target/release/remedy pipeline "$shdir/plan.txt" --cache "$shdir/c4" \
    --shards 4 --threads 4 >/dev/null
id1=("$shdir"/c1/identify-*)
id4=("$shdir"/c4/identify-*)
if [ "$(basename "${id1[0]}")" != "$(basename "${id4[0]}")" ]; then
    echo "verify: FAIL — sharded run changed the identify cache key" >&2
    exit 1
fi
if ! cmp -s "${id1[0]}/artifact" "${id4[0]}/artifact" ||
    ! cmp -s "${id1[0]}/hash" "${id4[0]}/hash"; then
    echo "verify: FAIL — sharded identify artifact diverged from --shards 1" >&2
    exit 1
fi
for c in c1 c4; do
    warm="$(target/release/remedy pipeline "$shdir/plan.txt" \
        --cache "$shdir/$c" --shards "${c#c}")"
    if printf '%s\n' "$warm" | grep -q '^computed'; then
        echo "verify: FAIL — warm sharded rerun ($c) recomputed a stage:" >&2
        printf '%s\n' "$warm" >&2
        exit 1
    fi
done

# worker-crash retry: rebuild with the failpoint registry compiled in,
# arm one transient death of shard 0's worker (the parent spawns the
# real subprocess and kills it), and require the retried run to succeed
# with output byte-identical to the --shards 1 baseline
cargo build --release -p remedy-cli --features failpoints
REMEDY_FAILPOINTS='shard.worker.s0=err(1)' \
    target/release/remedy pipeline "$shdir/plan.txt" --cache "$shdir/cfail" \
    --shards 4 --retries 2 --retry-base-ms 1 >/dev/null
idf=("$shdir"/cfail/identify-*)
if ! cmp -s "${id1[0]}/artifact" "${idf[0]}/artifact"; then
    echo "verify: FAIL — post-crash sharded artifact diverged from baseline" >&2
    exit 1
fi

echo "verify: OK"
