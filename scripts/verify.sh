#!/usr/bin/env bash
# Full verification gate: release build, the whole test suite, lints,
# formatting, doc warnings, and the ordered-radius ablation plan (cold
# run, then a warm run that must replay from cache). Run before sending
# a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# the Fig. 8 ordered ablation must run end to end, and a second run must
# be served entirely from the artifact cache
cache="$(mktemp -d)"
trap 'rm -rf "$cache"' EXIT
target/release/remedy pipeline examples/plans/ordered_ablation.plan \
    --cache "$cache" >/dev/null
warm="$(target/release/remedy pipeline examples/plans/ordered_ablation.plan \
    --cache "$cache")"
if printf '%s\n' "$warm" | grep -q '^computed'; then
    echo "verify: FAIL — warm ablation re-run recomputed a stage:" >&2
    printf '%s\n' "$warm" >&2
    exit 1
fi
target/release/remedy cache gc --cache "$cache" --max-bytes 0 >/dev/null

echo "verify: OK"
