#!/usr/bin/env bash
# Full verification gate: release build, the whole test suite, lints,
# and formatting. Run before sending a PR.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace -- -D warnings
cargo fmt --check
echo "verify: OK"
