//! # remedy
//!
//! Facade crate for the `remedy` workspace — a from-scratch Rust
//! implementation of *"Mitigating Subgroup Unfairness in Machine Learning
//! Classifiers: A Data-Driven Approach"* (Lin, Gupta & Jagadish, ICDE
//! 2024).
//!
//! Each member crate is re-exported under a short alias:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dataset`] | `remedy-dataset` | schema, columnar data, patterns, CSV, splits, synthetic generators |
//! | [`classifiers`] | `remedy-classifiers` | DT / RF / LG / NN / NB / kNN, grid search, CV, costing, persistence |
//! | [`fairness`] | `remedy-fairness` | divergence, subgroup explorer, fairness index, violations, audits |
//! | [`core`] | `remedy-core` | the paper's method: hierarchy, IBS identification, dataset remedy |
//! | [`baselines`] | `remedy-baselines` | Coverage, Reweighting, FairBalance, Fair-SMOTE, GerryFair |
//! | [`pipeline`] | `remedy-pipeline` | end-to-end runs as a cached, parallel DAG of typed stages |
//!
//! The [`prelude`] pulls in the types most programs need:
//!
//! (The `remedy` *function* is exported as [`apply_remedy`] in the
//! prelude so a glob import cannot shadow the crate name.)
//!
//! ```
//! use remedy::prelude::*;
//!
//! let data = remedy::dataset::synth::compas_n(1_000, 42);
//! let ibs = identify(&data, &IbsParams::default(), Algorithm::Optimized);
//! let fixed = apply_remedy(&data, &RemedyParams::default()).dataset;
//! assert!(fixed.len() > 0 || ibs.is_empty());
//! ```
//!
//! [`apply_remedy`]: remedy_core::remedy::remedy

pub use remedy_baselines as baselines;
pub use remedy_classifiers as classifiers;
pub use remedy_core as core;
pub use remedy_dataset as dataset;
pub use remedy_fairness as fairness;
pub use remedy_pipeline as pipeline;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use remedy_classifiers::{accuracy, train, Model, ModelKind};
    pub use remedy_core::remedy as apply_remedy;
    pub use remedy_core::{
        identify, Algorithm, IbsParams, Neighborhood, RemedyParams, Scope, Technique,
    };
    pub use remedy_dataset::{Attribute, Dataset, Pattern, Schema};
    pub use remedy_fairness::{
        fairness_index, fairness_violation, Explorer, FairnessIndexParams, Statistic,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_pipeline() {
        let data = remedy_dataset::synth::compas_n(800, 1);
        let ibs = identify(&data, &IbsParams::default(), Algorithm::Optimized);
        let outcome = apply_remedy(&data, &RemedyParams::default());
        let model = train(ModelKind::DecisionTree, &outcome.dataset, 1);
        let preds = model.predict(&data);
        let fi = fairness_index(
            &data,
            &preds,
            Statistic::Fpr,
            &FairnessIndexParams::default(),
        );
        assert!(fi >= 0.0);
        let _ = ibs;
    }
}
