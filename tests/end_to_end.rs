//! Cross-crate integration tests: the full dataset → IBS → remedy →
//! classifier → fairness pipeline.

use remedy::classifiers::{accuracy, train, ModelKind};
use remedy::core::{
    identify, remedy as remedy_data, Algorithm, IbsParams, RemedyParams, Scope, Technique,
};
use remedy::dataset::split::train_test_split;
use remedy::dataset::synth;
use remedy::fairness::{fairness_index, FairnessIndexParams, Statistic};

/// The paper's headline claim end-to-end: remedying the training data
/// lowers the subgroup fairness index of a downstream model without
/// destroying accuracy.
#[test]
fn remedy_mitigates_subgroup_unfairness() {
    let data = synth::compas(42);
    let (train_set, test_set) = train_test_split(&data, 0.7, 42).unwrap();
    let fi = FairnessIndexParams::default();

    let base_model = train(ModelKind::DecisionTree, &train_set, 42);
    let base_preds = base_model.predict(&test_set);
    let base_fi_fpr = fairness_index(&test_set, &base_preds, Statistic::Fpr, &fi);
    let base_fi_fnr = fairness_index(&test_set, &base_preds, Statistic::Fnr, &fi);
    let base_acc = accuracy(&base_preds, test_set.labels());

    let outcome = remedy_data(&train_set, &RemedyParams::default());
    let model = train(ModelKind::DecisionTree, &outcome.dataset, 42);
    let preds = model.predict(&test_set);
    let fi_fpr = fairness_index(&test_set, &preds, Statistic::Fpr, &fi);
    let fi_fnr = fairness_index(&test_set, &preds, Statistic::Fnr, &fi);
    let acc = accuracy(&preds, test_set.labels());

    assert!(
        fi_fpr < base_fi_fpr * 0.7,
        "FPR index should improve markedly: {base_fi_fpr} → {fi_fpr}"
    );
    // the paper: both statistics improve simultaneously (§V-B2)
    assert!(
        fi_fnr < base_fi_fnr,
        "FNR index should improve too: {base_fi_fnr} → {fi_fnr}"
    );
    assert!(
        base_acc - acc < 0.1,
        "accuracy drop must stay below 0.1: {base_acc} → {acc}"
    );
}

/// Remedying with each technique keeps datasets structurally valid.
#[test]
fn all_techniques_produce_valid_datasets() {
    let data = synth::compas_n(2_000, 5);
    for technique in Technique::ALL {
        let outcome = remedy_data(
            &data,
            &RemedyParams::builder()
                .technique(technique)
                .build()
                .unwrap(),
        );
        let d = &outcome.dataset;
        assert!(!d.is_empty(), "{technique}: dataset empty");
        for i in 0..d.len() {
            assert!(d.label(i) <= 1);
            for col in 0..d.schema().len() {
                assert!((d.value(i, col) as usize) < d.schema().attribute(col).cardinality());
            }
        }
        // massaging must preserve size exactly; undersampling never grows;
        // oversampling never shrinks
        match technique {
            Technique::Massaging => assert_eq!(d.len(), data.len()),
            Technique::Undersampling => assert!(d.len() <= data.len()),
            Technique::Oversampling => assert!(d.len() >= data.len()),
            Technique::PreferentialSampling => {}
        }
    }
}

/// The naïve and optimized identification algorithms agree on every
/// dataset and scope.
#[test]
fn identification_algorithms_agree_end_to_end() {
    for (name, data) in [
        ("compas", synth::compas_n(3_000, 1)),
        ("law", synth::law_school_n(2_000, 1)),
        ("adult", synth::adult_n(3_000, 1)),
    ] {
        for scope in [Scope::Lattice, Scope::Leaf, Scope::Top] {
            let params = IbsParams::builder().scope(scope).build().unwrap();
            let naive = identify(&data, &params, Algorithm::Naive);
            let optimized = identify(&data, &params, Algorithm::Optimized);
            assert_eq!(naive, optimized, "{name}/{scope:?}");
        }
    }
}

/// Lattice-scope identification finds at least as many biased regions as
/// either restricted scope.
#[test]
fn lattice_scope_subsumes_leaf_and_top() {
    let data = synth::compas_n(3_000, 9);
    let count = |scope| {
        identify(
            &data,
            &IbsParams::builder().scope(scope).build().unwrap(),
            Algorithm::Optimized,
        )
        .len()
    };
    let lattice = count(Scope::Lattice);
    assert!(lattice >= count(Scope::Leaf));
    assert!(lattice >= count(Scope::Top));
}

/// Seeds fully determine the pipeline: same inputs, same outputs.
#[test]
fn pipeline_is_reproducible() {
    let data = synth::law_school_n(1_500, 3);
    let params = RemedyParams::default();
    let o1 = remedy_data(&data, &params);
    let o2 = remedy_data(&data, &params);
    assert_eq!(o1.dataset, o2.dataset);
    let m1 = train(ModelKind::RandomForest, &o1.dataset, 3);
    let m2 = train(ModelKind::RandomForest, &o2.dataset, 3);
    assert_eq!(m1.predict(&data), m2.predict(&data));
}

/// Remedy never touches the test set: evaluation uses the untouched data.
#[test]
fn test_set_stays_untouched() {
    let data = synth::compas_n(2_000, 4);
    let (train_set, test_set) = train_test_split(&data, 0.7, 4).unwrap();
    let before = test_set.clone();
    let _ = remedy_data(&train_set, &RemedyParams::default());
    assert_eq!(test_set, before);
}
