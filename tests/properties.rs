//! Property-based tests over the core invariants, driven by proptest.

use proptest::prelude::*;
use remedy::core::{
    identify, remedy as remedy_data, Algorithm, IbsParams, Neighborhood, RemedyParams, Scope,
    Technique,
};
use remedy::core::Hierarchy;
use remedy::dataset::split::train_test_split;
use remedy::dataset::{Attribute, Dataset, Pattern, Schema};
use remedy::fairness::{Explorer, Statistic};
use remedy_baselines::reweight;

/// Arbitrary small dataset: 2 protected attributes (cards 2 and 3), one
/// feature attribute (card 2), 40–300 rows.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    let row = (0u32..2, 0u32..3, 0u32..2, 0u8..2);
    proptest::collection::vec(row, 40..300).prop_map(|rows| {
        let schema = Schema::new(
            vec![
                Attribute::from_strs("a", &["0", "1"]).protected(),
                Attribute::from_strs("b", &["0", "1", "2"]).protected(),
                Attribute::from_strs("f", &["0", "1"]),
            ],
            "y",
        )
        .into_shared();
        let mut d = Dataset::new(schema);
        for (a, b, f, y) in rows {
            d.push_row(&[a, b, f], y).unwrap();
        }
        d
    })
}

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    proptest::collection::vec((0usize..3, 0u32..2), 0..3)
        .prop_map(Pattern::from_terms)
}

proptest! {
    /// The optimized Algorithm 1 computes exactly what the naïve algorithm
    /// computes, for both neighborhood settings and every scope.
    #[test]
    fn naive_equals_optimized(data in arb_dataset(), tau in 0.0f64..1.0, k in 0u64..40) {
        for neighborhood in [Neighborhood::Unit, Neighborhood::Full] {
            for scope in [Scope::Lattice, Scope::Leaf, Scope::Top] {
                let params = IbsParams { tau_c: tau, min_size: k, neighborhood, scope };
                let naive = identify(&data, &params, Algorithm::Naive);
                let optimized = identify(&data, &params, Algorithm::Optimized);
                prop_assert_eq!(&naive, &optimized);
            }
        }
    }

    /// Hierarchy counts agree with direct pattern filtering for every
    /// non-empty region.
    #[test]
    fn hierarchy_counts_are_exact(data in arb_dataset()) {
        let h = Hierarchy::build(&data);
        for node in h.nodes() {
            for (&key, &counts) in &node.regions {
                let pattern = h.pattern_of(node.mask, key);
                let (pos, neg) = data.class_counts(&pattern);
                prop_assert_eq!(counts.pos, pos as u64);
                prop_assert_eq!(counts.neg, neg as u64);
            }
        }
    }

    /// Each node's regions partition the dataset.
    #[test]
    fn nodes_partition_dataset(data in arb_dataset()) {
        let h = Hierarchy::build(&data);
        for node in h.nodes() {
            let total: u64 = node.regions.values().map(|c| c.total()).sum();
            prop_assert_eq!(total, data.len() as u64);
        }
    }

    /// Dominance is reflexive and transitive; direct generalizations
    /// always dominate.
    #[test]
    fn dominance_laws(p in arb_pattern(), q in arb_pattern(), r in arb_pattern()) {
        prop_assert!(p.is_dominated_by(&p));
        if p.is_dominated_by(&q) && q.is_dominated_by(&r) {
            prop_assert!(p.is_dominated_by(&r));
        }
        for g in p.direct_generalizations() {
            prop_assert!(p.is_dominated_by(&g));
        }
        // mutual dominance implies equality
        if p.is_dominated_by(&q) && q.is_dominated_by(&p) {
            prop_assert_eq!(&p, &q);
        }
    }

    /// Remedy post-condition (Leaf scope, massaging): every updated
    /// region's imbalance gap shrinks toward the target.
    #[test]
    fn remedy_moves_ratios_toward_target(data in arb_dataset(), seed in 0u64..100) {
        let params = RemedyParams {
            technique: Technique::Massaging,
            tau_c: 0.2,
            min_size: 10,
            scope: Scope::Leaf,
            seed,
            ..RemedyParams::default()
        };
        let outcome = remedy_data(&data, &params);
        for update in &outcome.updates {
            let (pos, neg) = outcome.dataset.class_counts(&update.pattern);
            // massaging keeps |r| constant; ratio must be defined or the
            // region emptied one side entirely
            if neg > 0 {
                let after = pos as f64 / neg as f64;
                let gap_before = (update.ratio_before - update.target_ratio).abs();
                let gap_after = (after - update.target_ratio).abs();
                // Definition 6 rounds the flip count to the nearest
                // integer, so the final ratio may sit up to half a flip
                // from the target: |d ratio / d flip| ≈ (|r⁺|+|r⁻|)/|r⁻|²
                let slack = 0.5 * (pos + neg) as f64 / (neg as f64 * neg as f64) + 1e-9;
                prop_assert!(
                    gap_after <= gap_before.max(slack),
                    "gap grew: {} -> {} (target {}, slack {})",
                    gap_before, gap_after, update.target_ratio, slack
                );
            }
        }
    }

    /// Oversampling only ever adds rows; undersampling only removes;
    /// massaging preserves the row count.
    #[test]
    fn technique_size_invariants(data in arb_dataset(), seed in 0u64..50) {
        let base = RemedyParams { min_size: 10, tau_c: 0.1, seed, ..RemedyParams::default() };
        let over = remedy_data(&data, &RemedyParams { technique: Technique::Oversampling, ..base.clone() });
        prop_assert!(over.dataset.len() >= data.len());
        let under = remedy_data(&data, &RemedyParams { technique: Technique::Undersampling, ..base.clone() });
        prop_assert!(under.dataset.len() <= data.len());
        let massage = remedy_data(&data, &RemedyParams { technique: Technique::Massaging, ..base });
        prop_assert_eq!(massage.dataset.len(), data.len());
    }

    /// Splits partition the dataset: sizes add up and class counts are
    /// preserved.
    #[test]
    fn split_partitions(data in arb_dataset(), frac in 0.1f64..0.9, seed in 0u64..50) {
        let (train, test) = train_test_split(&data, frac, seed).unwrap();
        prop_assert_eq!(train.len() + test.len(), data.len());
        prop_assert_eq!(train.positives() + test.positives(), data.positives());
    }

    /// Reweighting produces positive weights and, for every subgroup with
    /// both classes present, equalizes the weighted class distribution to
    /// the dataset's. (Total weight is preserved exactly only when every
    /// (subgroup, label) cell is non-empty.)
    #[test]
    fn reweighting_invariants(data in arb_dataset()) {
        let w = reweight(&data);
        prop_assert!(w.weights().iter().all(|&x| x > 0.0));
        let protected = data.schema().protected_indices();
        let overall_pos = data.positives() as f64 / data.len() as f64;
        // group rows by protected value tuple
        let mut groups: std::collections::HashMap<Vec<u32>, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..data.len() {
            let key: Vec<u32> = protected.iter().map(|&a| data.value(i, a)).collect();
            groups.entry(key).or_default().push(i);
        }
        for rows in groups.values() {
            let has_pos = rows.iter().any(|&i| data.label(i) == 1);
            let has_neg = rows.iter().any(|&i| data.label(i) == 0);
            if !(has_pos && has_neg) {
                continue;
            }
            let w_pos: f64 = rows.iter().filter(|&&i| w.label(i) == 1).map(|&i| w.weight(i)).sum();
            let w_all: f64 = rows.iter().map(|&i| w.weight(i)).sum();
            prop_assert!(
                (w_pos / w_all - overall_pos).abs() < 1e-9,
                "group class distribution {} != overall {}",
                w_pos / w_all, overall_pos
            );
        }
    }

    /// Explorer reports are internally consistent: support matches size,
    /// divergence is within [0, 1], counts match direct filtering.
    #[test]
    fn explorer_reports_consistent(data in arb_dataset(), preds_seed in 0u64..50) {
        // pseudo-random predictions derived from the seed
        let preds: Vec<u8> = (0..data.len())
            .map(|i| u8::from((i as u64).wrapping_mul(preds_seed + 7).is_multiple_of(3)))
            .collect();
        let reports = Explorer::default().explore(&data, &preds, Statistic::Fpr);
        for r in &reports {
            prop_assert!((r.support - r.size as f64 / data.len() as f64).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&r.divergence));
            prop_assert!((0.0..=1.0).contains(&r.p_value));
            let expected = data.indices_matching(&r.pattern).len();
            prop_assert_eq!(r.size, expected);
        }
    }

    /// The imbalance-score sentinel appears exactly when a region has no
    /// negatives.
    #[test]
    fn imbalance_sentinel(pos in 0u64..1000, neg in 0u64..1000) {
        let score = remedy::core::imbalance(pos, neg);
        if neg == 0 {
            prop_assert_eq!(score, -1.0);
        } else {
            prop_assert!((score - pos as f64 / neg as f64).abs() < 1e-12);
        }
    }
}
