//! Randomized property tests over the core invariants.
//!
//! Driven by a seeded [`SplitRng`] loop instead of an external
//! property-testing framework (the build environment is offline). Each
//! property runs against a fixed number of generated cases; failures print
//! the case seed so they can be replayed by hardcoding it below.

use remedy::core::Hierarchy;
use remedy::core::{
    identify, remedy as remedy_data, Algorithm, IbsParams, Neighborhood, RemedyParams, Scope,
    Technique,
};
use remedy::dataset::split::{train_test_split, SplitRng};
use remedy::dataset::{Attribute, Dataset, Pattern, Schema};
use remedy::fairness::{Explorer, Statistic};
use remedy_baselines::reweight;

const CASES: u64 = 40;

/// Arbitrary small dataset: 2 protected attributes (cards 2 and 3), one
/// feature attribute (card 2), 40–300 rows.
fn arb_dataset(rng: &mut SplitRng) -> Dataset {
    let schema = Schema::new(
        vec![
            Attribute::from_strs("a", &["0", "1"]).protected(),
            Attribute::from_strs("b", &["0", "1", "2"]).protected(),
            Attribute::from_strs("f", &["0", "1"]),
        ],
        "y",
    )
    .into_shared();
    let mut d = Dataset::new(schema);
    let rows = 40 + rng.below(260);
    for _ in 0..rows {
        let a = rng.below(2) as u32;
        let b = rng.below(3) as u32;
        let f = rng.below(2) as u32;
        let y = rng.below(2) as u8;
        d.push_row(&[a, b, f], y).unwrap();
    }
    d
}

/// Arbitrary pattern over columns 0..3 with values 0..2, 0–2 terms.
fn arb_pattern(rng: &mut SplitRng) -> Pattern {
    let terms = rng.below(3);
    Pattern::from_terms((0..terms).map(|_| (rng.below(3), rng.below(2) as u32)))
}

/// The optimized Algorithm 1 computes exactly what the naïve algorithm
/// computes, for every neighborhood setting and every scope.
#[test]
fn naive_equals_optimized() {
    for case in 0..CASES {
        let mut rng = SplitRng::new(case + 1);
        let data = arb_dataset(&mut rng);
        let tau = rng.unit();
        let k = 1 + rng.below(39) as u64;
        let radius = 0.5 + 2.0 * rng.unit();
        for neighborhood in [
            Neighborhood::Unit,
            Neighborhood::Full,
            Neighborhood::OrderedRadius(radius),
        ] {
            for scope in [Scope::Lattice, Scope::Leaf, Scope::Top] {
                let params = IbsParams::builder()
                    .tau_c(tau)
                    .min_size(k)
                    .neighborhood(neighborhood)
                    .scope(scope)
                    .build()
                    .unwrap();
                let naive = identify(&data, &params, Algorithm::Naive);
                let optimized = identify(&data, &params, Algorithm::Optimized);
                assert_eq!(naive, optimized, "case {case}");
            }
        }
    }
}

/// Hierarchy counts agree with direct pattern filtering for every
/// non-empty region, and each node's regions partition the dataset.
#[test]
fn hierarchy_counts_are_exact_and_partition() {
    for case in 0..CASES {
        let mut rng = SplitRng::new(case + 100);
        let data = arb_dataset(&mut rng);
        let h = Hierarchy::build(&data);
        for node in h.nodes() {
            let mut total = 0u64;
            for (&key, &counts) in &node.regions {
                let pattern = h.pattern_of(node.mask, key);
                let (pos, neg) = data.class_counts(&pattern);
                assert_eq!(counts.pos, pos as u64, "case {case}");
                assert_eq!(counts.neg, neg as u64, "case {case}");
                total += counts.total();
            }
            assert_eq!(total, data.len() as u64, "case {case}: partition");
        }
    }
}

/// Dominance is reflexive and transitive; direct generalizations always
/// dominate; mutual dominance implies equality.
#[test]
fn dominance_laws() {
    for case in 0..400 {
        let mut rng = SplitRng::new(case + 200);
        let p = arb_pattern(&mut rng);
        let q = arb_pattern(&mut rng);
        let r = arb_pattern(&mut rng);
        assert!(p.is_dominated_by(&p));
        if p.is_dominated_by(&q) && q.is_dominated_by(&r) {
            assert!(p.is_dominated_by(&r), "case {case}: transitivity");
        }
        for g in p.direct_generalizations() {
            assert!(p.is_dominated_by(&g), "case {case}");
        }
        if p.is_dominated_by(&q) && q.is_dominated_by(&p) {
            assert_eq!(p, q, "case {case}: antisymmetry");
        }
    }
}

/// Remedy post-condition (Leaf scope, massaging): every updated region's
/// imbalance gap shrinks toward the target.
#[test]
fn remedy_moves_ratios_toward_target() {
    for case in 0..CASES {
        let mut rng = SplitRng::new(case + 300);
        let data = arb_dataset(&mut rng);
        let params = RemedyParams::builder()
            .technique(Technique::Massaging)
            .tau_c(0.2)
            .min_size(10)
            .scope(Scope::Leaf)
            .seed(case)
            .build()
            .unwrap();
        let outcome = remedy_data(&data, &params);
        for update in &outcome.updates {
            let (pos, neg) = outcome.dataset.class_counts(&update.pattern);
            // massaging keeps |r| constant; ratio must be defined or the
            // region emptied one side entirely
            if neg > 0 {
                let after = pos as f64 / neg as f64;
                let gap_before = (update.ratio_before - update.target_ratio).abs();
                let gap_after = (after - update.target_ratio).abs();
                // Definition 6 rounds the flip count to the nearest
                // integer, so the final ratio may sit up to half a flip
                // from the target: |d ratio / d flip| ≈ (|r⁺|+|r⁻|)/|r⁻|²
                let slack = 0.5 * (pos + neg) as f64 / (neg as f64 * neg as f64) + 1e-9;
                assert!(
                    gap_after <= gap_before.max(slack),
                    "case {case}: gap grew: {gap_before} -> {gap_after} \
                     (target {}, slack {slack})",
                    update.target_ratio
                );
            }
        }
    }
}

/// Oversampling only ever adds rows; undersampling only removes; massaging
/// preserves the row count.
#[test]
fn technique_size_invariants() {
    for case in 0..CASES {
        let mut rng = SplitRng::new(case + 400);
        let data = arb_dataset(&mut rng);
        let with_technique = |technique| {
            RemedyParams::builder()
                .technique(technique)
                .min_size(10)
                .tau_c(0.1)
                .seed(case)
                .build()
                .unwrap()
        };
        let over = remedy_data(&data, &with_technique(Technique::Oversampling));
        assert!(over.dataset.len() >= data.len(), "case {case}");
        let under = remedy_data(&data, &with_technique(Technique::Undersampling));
        assert!(under.dataset.len() <= data.len(), "case {case}");
        let massage = remedy_data(&data, &with_technique(Technique::Massaging));
        assert_eq!(massage.dataset.len(), data.len(), "case {case}");
    }
}

/// Splits partition the dataset: sizes add up and class counts are
/// preserved.
#[test]
fn split_partitions() {
    for case in 0..CASES {
        let mut rng = SplitRng::new(case + 500);
        let data = arb_dataset(&mut rng);
        let frac = 0.1 + 0.8 * rng.unit();
        let (train, test) = train_test_split(&data, frac, case).unwrap();
        assert_eq!(train.len() + test.len(), data.len(), "case {case}");
        assert_eq!(
            train.positives() + test.positives(),
            data.positives(),
            "case {case}"
        );
    }
}

/// Reweighting produces positive weights and, for every subgroup with both
/// classes present, equalizes the weighted class distribution to the
/// dataset's. (Total weight is preserved exactly only when every
/// (subgroup, label) cell is non-empty.)
#[test]
fn reweighting_invariants() {
    for case in 0..CASES {
        let mut rng = SplitRng::new(case + 600);
        let data = arb_dataset(&mut rng);
        let w = reweight(&data);
        assert!(w.weights().iter().all(|&x| x > 0.0), "case {case}");
        let protected = data.schema().protected_indices();
        let overall_pos = data.positives() as f64 / data.len() as f64;
        // group rows by protected value tuple
        let mut groups: std::collections::HashMap<Vec<u32>, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..data.len() {
            let key: Vec<u32> = protected.iter().map(|&a| data.value(i, a)).collect();
            groups.entry(key).or_default().push(i);
        }
        for rows in groups.values() {
            let has_pos = rows.iter().any(|&i| data.label(i) == 1);
            let has_neg = rows.iter().any(|&i| data.label(i) == 0);
            if !(has_pos && has_neg) {
                continue;
            }
            let w_pos: f64 = rows
                .iter()
                .filter(|&&i| w.label(i) == 1)
                .map(|&i| w.weight(i))
                .sum();
            let w_all: f64 = rows.iter().map(|&i| w.weight(i)).sum();
            assert!(
                (w_pos / w_all - overall_pos).abs() < 1e-9,
                "case {case}: group class distribution {} != overall {overall_pos}",
                w_pos / w_all
            );
        }
    }
}

/// Explorer reports are internally consistent: support matches size,
/// divergence is within [0, 1], counts match direct filtering.
#[test]
fn explorer_reports_consistent() {
    for case in 0..CASES {
        let mut rng = SplitRng::new(case + 700);
        let data = arb_dataset(&mut rng);
        let preds_seed = rng.below(50) as u64;
        // pseudo-random predictions derived from the seed
        let preds: Vec<u8> = (0..data.len())
            .map(|i| u8::from((i as u64).wrapping_mul(preds_seed + 7).is_multiple_of(3)))
            .collect();
        let reports = Explorer::default().explore(&data, &preds, Statistic::Fpr);
        for r in &reports {
            assert!(
                (r.support - r.size as f64 / data.len() as f64).abs() < 1e-12,
                "case {case}"
            );
            assert!((0.0..=1.0).contains(&r.divergence), "case {case}");
            assert!((0.0..=1.0).contains(&r.p_value), "case {case}");
            let expected = data.indices_matching(&r.pattern).len();
            assert_eq!(r.size, expected, "case {case}");
        }
    }
}

/// The imbalance-score sentinel appears exactly when a region has no
/// negatives.
#[test]
fn imbalance_sentinel() {
    let mut rng = SplitRng::new(800);
    for case in 0..1000 {
        let pos = rng.below(1000) as u64;
        let neg = rng.below(1000) as u64;
        let score = remedy::core::imbalance(pos, neg);
        if neg == 0 {
            assert_eq!(score, -1.0, "case {case}");
        } else {
            assert!(
                (score - pos as f64 / neg as f64).abs() < 1e-12,
                "case {case}"
            );
        }
    }
    assert_eq!(remedy::core::imbalance(5, 0), -1.0);
}
